(** The pipeline driver: one API for the full flow

    {v analyze → classify → materialize → schedule → validate → execute v}

    Each stage is exposed separately (for frontends that stop early, like
    [recpart partition] or [recpart codegen]) and {!run} composes all of
    them with per-stage wall-time instrumentation, producing a
    {!Report.t}.  Failures are structured ({!Diag.error}) and tagged with
    the stage that produced them — no [failwith] strings. *)

(** A plan bound to concrete loop-bound parameters. *)
type materialized =
  | Rec of {
      rp : Core.Partition.rec_plan;
      c : Core.Partition.concrete_rec;
    }  (** concrete three-set partition + chains *)
  | Fronts of Core.Dataflow.concrete
      (** successive dataflow fronts over the exact instance graph *)
  | Tasks of { sched : Runtime.Sched.t }
      (** strategies that directly produce a phase schedule (PDM cosets,
          unique-set regions, mindist tiles) *)
  | Model of { tr : Depend.Trace.t }
      (** simulation-only strategies (DOACROSS) *)

type error = {
  stage : Diag.stage;  (** the stage that failed *)
  error : Diag.error;
  timings : (string * float) list;
      (** wall seconds of every stage that ran, in pipeline order and
          including the failing stage itself — so a failing run still
          reports where time went *)
}

val error_to_string : error -> string

(* ---- individual stages ---------------------------------------------- *)

val analyze :
  Loopir.Ast.program -> (Depend.Solve.simple, Diag.error) result
(** Exact dependence analysis of a single-statement perfect nest. *)

val classify :
  ?strategy:Plan.strategy ->
  Loopir.Ast.program ->
  (Plan.t, Diag.error) result
(** Algorithm 1 strategy selection, or a forced strategy. *)

val materialize :
  Plan.t ->
  prog:Loopir.Ast.program ->
  params:(string * int) list ->
  (materialized, Diag.error) result
(** Binds loop-bound parameters and builds the concrete partition.  Checks
    that every program parameter is bound ([Unbound_parameter]). *)

val schedule : materialized -> (Runtime.Sched.t, Diag.error) result
(** The executable phase/barrier schedule; [Error Unsupported] for
    model-only strategies (DOACROSS). *)

val codegen :
  Plan.t -> prog:Loopir.Ast.program -> (string, Diag.error) result
(** The pseudo-Fortran listing for plans that have one (REC, dataflow). *)

val stats : materialized -> Report.partition_stats
(** Partition sizes, chain counts, front counts for the report. *)

(* ---- composed, instrumented run ------------------------------------- *)

type options = {
  threads : int;  (** domains for parallel execution (must be ≥ 1) *)
  check : bool;  (** verify legality + sequential equivalence *)
  measure : bool;  (** measure seq/parallel wall time *)
  strategy : Plan.strategy option;  (** [None] = Algorithm 1 selection *)
  engine : [ `Enum | `Scan ];  (** REC materialization engine *)
  exec_engine : Runtime.Exec.engine;
      (** schedule execution engine: [`Compiled] (default) runs closure-
          compiled kernels, [`Bytecode] the flat-bytecode VM, [`Interp]
          the AST-walking interpreter *)
  chunking : [ `Static | `Cost ];
      (** work distribution within a phase: [`Cost] (default) sizes DOALL
          chunks from the cost model ([sim_cost] when given, otherwise
          {!Runtime.Sim.base_seconds}) and self-schedules chains
          longest-first; [`Static] pre-deals equal blocks / LPT buckets *)
  workers : Runtime.Workers.t option;
      (** persistent executor pool to reuse across runs; [None] (the
          default) lets each run create and shut down a transient pool *)
  sim_cost : Runtime.Sim.cost option;
      (** cost-model constants for the pre-execution prediction
          ({!Report.prediction}); [None] (the default) predicts with the
          uncalibrated {!Runtime.Sim.base_seconds}, [Some c] uses
          calibrated constants (see {!Runtime.Sim.calibrate}) and tags the
          report's prediction block ["calibrated"] *)
  sink : Obs.Sink.t;
      (** where stage/execution spans go; {!Obs.Sink.null} (the default)
          records nothing and costs one branch per span site *)
  events : Obs.Event.t;
      (** where decision-provenance events go (installed as the ambient
          {!Obs.Event} log for the duration of {!run}); {!Obs.Event.null}
          (the default) records nothing *)
}

val default_options : options
(** 4 threads, check and measure on, automatic strategy, scan engine,
    no-op sink, no-op event log. *)

type outcome = {
  plan : Plan.t;
  concrete : materialized;
  sched : Runtime.Sched.t option;  (** [None] for model-only strategies *)
  report : Report.t;
}

val run :
  ?options:options ->
  name:string ->
  params:(string * int) list ->
  Loopir.Ast.program ->
  (outcome, error) result
(** The whole pipeline on one program.  When [options.check] is set, the
    schedule is validated against the exact instance graph
    ({!Runtime.Sched.check_legal}) and executed on domains with the result
    compared to the sequential interpreter; check failures are reported in
    {!Report.t} (the pipeline itself still succeeds — an [Error] means a
    stage could not run at all). *)
