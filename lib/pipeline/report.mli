(** Per-run diagnostics: what strategy ran, how long each stage took, how
    big the partition artifacts were, and how the execution behaved —
    renderable as text ([recpart run]) or JSON ([recpart run --json],
    [BENCH_pipeline.json]).

    Every field that only applies to some strategies is an option; [None]
    fields are omitted from the JSON rendering. *)

type partition_stats = {
  p1 : int option;  (** |P1| — independent/initial iterations *)
  p2 : int option;  (** |P2| — intermediate iterations (on chains) *)
  p3 : int option;  (** |P3| — final iterations *)
  n_chains : int option;  (** number of recurrence chains *)
  longest_chain : int option;
  growth : float option;  (** Theorem 1 growth factor a *)
  theorem_bound : int option;  (** Theorem 1 chain-length bound *)
  n_fronts : int option;  (** dataflow fronts (= partitioning steps) *)
  n_tasks : int option;  (** parallel sequential tasks (cosets, tiles, …) *)
}

val empty_stats : partition_stats

type check_result = Passed | Failed of string | Skipped

type phase_profile = {
  label : string;
  instances : int;
  units : int;  (** non-empty parallel work units in the phase *)
  seconds : float;
  busy_seconds : float;
      (** Σ per-domain execution time of the phase; the gap to
          [threads × seconds] is barrier idle — also the work-time input
          {!Runtime.Sim.calibrate} fits [w_iter] from *)
  alloc_words : float;
      (** words allocated across all domains while executing the phase
          (sum of the executor's per-domain {!Runtime.Exec} deltas) *)
}

type phase_prediction = {
  p_label : string;
  predicted_s : float;  (** {!Runtime.Sim.phase_time} before execution *)
  actual_s : float option;  (** measured phase wall; [None] if not run *)
  p_rel_error : float option;  (** |predicted − actual| / actual *)
}

(** The predicted-vs-actual accounting block: what {!Runtime.Sim} said the
    schedule would cost before execution, against what {!Runtime.Exec}
    then measured. *)
type prediction = {
  cost_source : string;
      (** ["default"] (uncalibrated {!Runtime.Sim.base_seconds}) or
          ["calibrated"] (constants fitted from measured runs) *)
  per_phase : phase_prediction list;
  total_predicted_s : float;
  total_actual_s : float option;
  rel_error : float option;
}

val rel_error : predicted:float -> actual:float -> float option
(** |predicted − actual| / actual; [None] when [actual ≤ 0] or the ratio
    is not finite. *)

type balance = {
  busy : float array;
      (** busy seconds per domain slot, summed across phases (overflow
          buckets fold into the last slot, like {!Runtime.Exec.thread_loads}) *)
  busy_max : float;
  busy_min : float;
  busy_mean : float;
  idle_fraction : float;
      (** 1 − Σbusy / (threads × Σ phase wall): time domains spent waiting
          at barriers or idle for lack of work *)
  per_phase_idle : (string * float) list;
      (** per phase: idle fraction at that barrier (0 = perfectly
          balanced) *)
}

val balance_of_phases :
  threads:int -> (string * float array * float) list -> balance option
(** [balance_of_phases ~threads [(label, busy, wall); …]] aggregates the
    executor's per-phase busy arrays into the load-imbalance breakdown;
    [None] on an empty list.  Idle fractions are clamped to [[0, 1]]:
    degenerate inputs — zero or non-finite wall times, empty busy
    arrays — yield 0.0, never [nan]/[inf]. *)

type t = {
  program : string;
  params : (string * int) list;
  strategy : string;
  reason : string option;
  timings : (string * float) list;
      (** stage name → wall seconds, in pipeline order *)
  n_instances : int option;
  n_phases : int option;
  stats : partition_stats option;
  threads : int;
  legality : check_result;  (** every dependence edge respected? *)
  semantics : check_result;  (** arrays identical to the sequential run? *)
  exec_engine : string option;
      (** execution engine of the parallel run
          ("bytecode"/"compiled"/"interp"); [None] when nothing was
          executed *)
  chunking : string option;
      (** chunk policy of the parallel run ("static"/"cost"); [None] when
          nothing was executed *)
  seq_seconds : float option;  (** sequential interpreter wall time *)
  par_seconds : float option;  (** instrumented schedule execution *)
  model_makespan : float option;  (** DOACROSS cost-model makespan *)
  thread_loads : int array option;
      (** instances executed per domain, across phases *)
  phases : phase_profile list;  (** per-phase execution profile *)
  balance : balance option;  (** domain busy/idle breakdown *)
  prediction : prediction option;
      (** cost-model accounting; [None] when no schedule was predicted *)
  gc : (string * Obs.Gcstats.t) list;
      (** per-stage GC telemetry ({!Obs.Gcstats.diff} around each pipeline
          stage), in pipeline order; rendered as a ["gc"] object in JSON *)
  metrics : Obs.Metrics.t option;
      (** counters/histograms the run moved (a {!Obs.Metrics.diff} of
          before/after snapshots) *)
}

val to_text : t -> string
val to_json : t -> Json.t

val metrics_json : Obs.Metrics.t -> Json.t
(** The ["metrics"] object embedded in {!to_json}; also used by [recpart
    explain --json] for its analysis-metrics section. *)

val check_result_string : check_result -> string
