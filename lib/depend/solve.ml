module L = Presburger.Linexpr
module C = Presburger.Constr
module P = Presburger.Poly
module Iset = Presburger.Iset
module Rel = Presburger.Rel
module Lex = Presburger.Lex
module Affine = Loopir.Affine
module Prog = Loopir.Prog

type simple = {
  prog : Loopir.Ast.program;
  stmt : Prog.stmt_info;
  iters : string array;
  params : string array;
  phi : Iset.t;
  rd : Presburger.Rel.t;
  pair : Depeq.t option;
}

let c_analyze_simple = Obs.Counter.make "solve.analyze_simple"
let c_analyze_unified = Obs.Counter.make "solve.analyze_unified"
let c_dep_pairs = Obs.Counter.make "solve.dep_pairs"

(* Ordered reference pairs with at least one write. *)
let dep_ref_pairs refs1 refs2 =
  let pairs =
    List.concat_map
      (fun (a1, s1, k1) ->
        List.filter_map
          (fun (a2, s2, k2) ->
            if a1 = a2 && (k1 = Prog.Write || k2 = Prog.Write) then
              Some ((a1, s1, k1), (a2, s2, k2))
            else None)
          refs2)
      refs1
  in
  Obs.Counter.add c_dep_pairs (List.length pairs);
  pairs

let analyze_simple prog0 =
  Obs.Counter.incr c_analyze_simple;
  let prog = Loopir.Normalize.unit_strides prog0 in
  let stmt =
    match Prog.stmts_of prog with
    | [ s ] -> s
    | _ -> invalid_arg "Solve.analyze_simple: single statement required"
  in
  let m = Prog.depth stmt in
  if m = 0 then invalid_arg "Solve.analyze_simple: statement not in a loop";
  let params = Array.of_list prog.Loopir.Ast.params in
  let np = Array.length params in
  let iters = Array.of_list (Prog.loop_vars stmt) in
  let phi = Space.stmt_space ~params stmt in
  let out_names = Array.map (fun v -> v ^ "'") iters in
  let n = (2 * m) + np in
  (* Dimension maps for the relation space: in 0..m-1, out m..2m-1,
     params 2m… *)
  let index_in =
    let tbl = Hashtbl.create 8 in
    Array.iteri (fun k v -> Hashtbl.replace tbl v ((2 * m) + k)) params;
    Array.iteri (fun k v -> Hashtbl.replace tbl v k) iters;
    fun v ->
      match Hashtbl.find_opt tbl v with Some k -> k | None -> raise Not_found
  in
  let index_out =
    let tbl = Hashtbl.create 8 in
    Array.iteri (fun k v -> Hashtbl.replace tbl v ((2 * m) + k)) params;
    Array.iteri (fun k v -> Hashtbl.replace tbl v (m + k)) iters;
    fun v ->
      match Hashtbl.find_opt tbl v with Some k -> k | None -> raise Not_found
  in
  let dom_cons index_of base_var =
    List.concat
      (List.mapi
         (fun k ctx ->
           Space.bound_constraints ~n ~index_of ~var:(base_var + k) ctx)
         stmt.Prog.loops)
  in
  let lex = Lex.lt ~n_total:n ~fst_off:0 ~snd_off:m ~len:m in
  let polys =
    List.concat_map
      (fun (((_, subs1, _), (_, subs2, _)) : _ * _) ->
        let affs subs index_of =
          List.map
            (fun e ->
              match Affine.of_expr e with
              | None -> None
              | Some a -> Some (Space.linexpr_of_affine ~n ~index_of a))
            subs
          |> fun l ->
          if List.exists Option.is_none l then None
          else Some (List.map Option.get l)
        in
        match (affs subs1 index_in, affs subs2 index_out) with
        | Some e1, Some e2 ->
            let eqs = List.map2 (fun a b -> C.Eq (L.sub a b)) e1 e2 in
            let base =
              P.make n (eqs @ dom_cons index_in 0 @ dom_cons index_out m)
            in
            Presburger.Dnf.inter [ base ] lex
        | _ -> [])
      (dep_ref_pairs (Prog.refs_of stmt) (Prog.refs_of stmt))
  in
  let rd =
    Rel.make ~inn:iters ~out:out_names ~params polys
    |> Rel.simplify
  in
  let pair = Depeq.of_stmt stmt in
  Obs.Event.emit ~scope:"depend" ~name:"solve.simple" (fun () ->
      let base =
        [
          ("depth", Obs.Event.Int m);
          ("iters", Obs.Event.Str (String.concat " " (Array.to_list iters)));
          ("rd", Obs.Event.Str (Format.asprintf "%a" Rel.pp rd));
          ("rd_empty", Obs.Event.Bool (Rel.is_empty rd));
        ]
      in
      match pair with
      | None -> base @ [ ("coupled_pair", Obs.Event.Bool false) ]
      | Some p ->
          base
          @ [
              ("coupled_pair", Obs.Event.Bool true);
              ("array", Obs.Event.Str p.Depeq.arr);
              ("det_a", Obs.Event.Int (Depeq.det_a p));
              ("det_b", Obs.Event.Int (Depeq.det_b p));
              ("full_rank", Obs.Event.Bool (Depeq.full_rank p));
            ]);
  { prog; stmt; iters; params; phi; rd; pair }

(* ------------------------------------------------------------------ *)
(* Unified statement-level analysis                                    *)

type unified = {
  uprog : Loopir.Ast.program;
  unified : Space.unified;
  uparams : string array;
  uphi : Iset.t;
  urd : Presburger.Rel.t;
}

let pair_relation u (s1 : Prog.stmt_info) subs1 (s2 : Prog.stmt_info) subs2 =
  let d = Space.unified_dim u in
  let np = Array.length u.Space.params in
  let n = (2 * d) + np in
  let params_off = 2 * d in
  let idx1 = Space.stmt_index_fn u ~off:0 ~params_off s1 in
  let idx2 = Space.stmt_index_fn u ~off:d ~params_off s2 in
  let affs subs index_of =
    let l =
      List.map
        (fun e ->
          match Affine.of_expr e with
          | None -> None
          | Some a -> Some (Space.linexpr_of_affine ~n ~index_of a))
        subs
    in
    if List.exists Option.is_none l then None
    else Some (List.map Option.get l)
  in
  match (affs subs1 idx1, affs subs2 idx2) with
  | Some e1, Some e2 ->
      let eqs = List.map2 (fun a b -> C.Eq (L.sub a b)) e1 e2 in
      let dom1 = Space.stmt_poly u ~n ~off:0 ~params_off s1 in
      let dom2 = Space.stmt_poly u ~n ~off:d ~params_off s2 in
      let base = P.add_constrs (P.inter dom1 dom2) eqs in
      let lex = Lex.lt ~n_total:n ~fst_off:0 ~snd_off:d ~len:d in
      let polys = Presburger.Dnf.inter [ base ] lex in
      let out_names = Array.map (fun v -> v ^ "'") u.Space.dims in
      Some (Rel.make ~inn:u.Space.dims ~out:out_names ~params:u.Space.params polys)
  | _ -> None

let analyze_unified prog0 =
  Obs.Counter.incr c_analyze_unified;
  let prog = Loopir.Normalize.unit_strides prog0 in
  let u, phi = Space.unified_space prog in
  let stmts = Prog.stmts_of prog in
  let out_names = Array.map (fun v -> v ^ "'") u.Space.dims in
  let params = u.Space.params in
  let empty = Rel.empty ~inn:u.Space.dims ~out:out_names ~params in
  let rd =
    List.fold_left
      (fun acc s1 ->
        List.fold_left
          (fun acc s2 ->
            List.fold_left
              (fun acc ((_, subs1, _), (_, subs2, _)) ->
                match pair_relation u s1 subs1 s2 subs2 with
                | Some r -> Rel.union acc r
                | None -> acc)
              acc
              (dep_ref_pairs (Prog.refs_of s1) (Prog.refs_of s2)))
          acc stmts)
      empty stmts
  in
  let urd = Rel.simplify rd in
  Obs.Event.emit ~scope:"depend" ~name:"solve.unified" (fun () ->
      [
        ("stmts", Obs.Event.Int (List.length stmts));
        ("dims", Obs.Event.Int (Space.unified_dim u));
        ("rd", Obs.Event.Str (Format.asprintf "%a" Rel.pp urd));
        ("rd_empty", Obs.Event.Bool (Rel.is_empty urd));
      ]);
  { uprog = prog; unified = u; uparams = params; uphi = phi; urd }
