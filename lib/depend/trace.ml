module Ast = Loopir.Ast


type instance = { inst : int; stmt : int; iter : int array }

type t = {
  instances : instance array;
  edge_src : int array;
  edge_dst : int array;
}

let n_edges t = Array.length t.edge_src

let iter_edges t f =
  for k = 0 to Array.length t.edge_src - 1 do
    f t.edge_src.(k) t.edge_dst.(k)
  done

let edges t =
  List.init (Array.length t.edge_src) (fun k -> (t.edge_src.(k), t.edge_dst.(k)))

(* Growable int-pair buffer. *)
type ebuf = { mutable src : int array; mutable dst : int array; mutable len : int }

let ebuf_make () = { src = Array.make 1024 0; dst = Array.make 1024 0; len = 0 }

let ebuf_push b s d =
  if b.len = Array.length b.src then begin
    let grow a = Array.append a (Array.make (Array.length a) 0) in
    b.src <- grow b.src;
    b.dst <- grow b.dst
  end;
  b.src.(b.len) <- s;
  b.dst.(b.len) <- d;
  b.len <- b.len + 1

(* Per array element: the last writing instance and the readers seen since. *)
type cell = { mutable last_write : int; mutable readers : int list }

let build prog ~params =
  let prog = Loopir.Normalize.unit_strides prog in
  List.iter
    (fun p ->
      if not (List.mem_assoc p params) then
        Diag.fail (Diag.Unbound_parameter p))
    prog.Ast.params;
  (* Annotate every Assign with its static id, numbering in the same
     textual order as Prog.stmts_of. *)
  let next_static = ref 0 in
  let rec annotate = function
    | Ast.Assign (lhs, rhs) ->
        let id = !next_static in
        incr next_static;
        `Assign (id, lhs, rhs)
    | Ast.Loop l -> `Loop (l, List.map annotate l.Ast.body)
  in
  let annotated = List.map annotate prog.Ast.body in
  let cells : (string * int list, cell) Hashtbl.t = Hashtbl.create 4096 in
  let instances = ref [] in
  let n_inst = ref 0 in
  let eb = ebuf_make () in
  let add_edge src dst = if src <> dst then ebuf_push eb src dst in
  let cell_of key =
    match Hashtbl.find_opt cells key with
    | Some c -> c
    | None ->
        let c = { last_write = -1; readers = [] } in
        Hashtbl.add cells key c;
        c
  in
  let read inst key =
    let c = cell_of key in
    if c.last_write >= 0 then add_edge c.last_write inst;
    c.readers <- inst :: c.readers
  in
  let write inst key =
    let c = cell_of key in
    if c.last_write >= 0 then add_edge c.last_write inst;
    List.iter (fun r -> add_edge r inst) c.readers;
    c.readers <- [];
    c.last_write <- inst
  in
  let rec record_reads env inst = function
    | Ast.Int _ | Ast.Real _ | Ast.Var _ -> ()
    | Ast.Ref (a, subs) ->
        List.iter (record_reads env inst) subs;
        read inst (a, List.map (Loopir.Eval_int.eval env) subs)
    | Ast.Bin (_, a, b) | Ast.Mod (a, b) ->
        record_reads env inst a;
        record_reads env inst b
    | Ast.Un (_, a) | Ast.Pow (a, _) -> record_reads env inst a
    | Ast.Min es | Ast.Max es -> List.iter (record_reads env inst) es
  in
  let rec run env iter_stack = function
    | `Assign (stmt, (a, subs), rhs) ->
        let inst = !n_inst in
        incr n_inst;
        instances :=
          { inst; stmt; iter = Array.of_list (List.rev iter_stack) }
          :: !instances;
        record_reads env inst rhs;
        write inst (a, List.map (Loopir.Eval_int.eval env) subs)
    | `Loop (l, body) ->
        let lo = Loopir.Eval_int.eval env l.Ast.lo
        and hi = Loopir.Eval_int.eval env l.Ast.hi in
        for v = lo to hi do
          let env' name = if name = l.Ast.index then v else env name in
          List.iter (run env' (v :: iter_stack)) body
        done
  in
  let env0 name =
    match List.assoc_opt name params with
    | Some v -> v
    | None -> Diag.fail (Diag.Unbound_variable name)
  in
  List.iter (run env0 []) annotated;
  {
    instances = Array.of_list (List.rev !instances);
    edge_src = Array.sub eb.src 0 eb.len;
    edge_dst = Array.sub eb.dst 0 eb.len;
  }

let build_result prog ~params = Diag.result (fun () -> build prog ~params)
