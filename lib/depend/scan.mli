(** Direct enumeration of a statement's iteration space by evaluating its
    loop bounds — linear in the number of iterations, used to materialize
    paper-scale experiments (e.g. 300×1000) where projection-based
    enumeration would be wasteful. *)

val iter_space :
  Loopir.Prog.stmt_info -> params:(string * int) list -> int array list
(** Iteration vectors in lexicographic (execution) order.  Raises
    {!Diag.Error} ([Unbound_variable]) when a loop bound mentions a name
    that is neither an enclosing index nor a bound parameter. *)

val count : Loopir.Prog.stmt_info -> params:(string * int) list -> int
