module Prog = Loopir.Prog

let walk (s : Prog.stmt_info) ~params visit =
  let rec go bindings = function
    | [] -> visit (Array.of_list (List.rev_map snd bindings))
    | (ctx : Prog.loop_ctx) :: rest ->
        let env name =
          match List.assoc_opt name bindings with
          | Some v -> v
          | None -> (
              match List.assoc_opt name params with
              | Some v -> v
              | None -> Diag.fail (Diag.Unbound_variable name))
        in
        let lo = Loopir.Eval_int.eval env ctx.Prog.lo
        and hi = Loopir.Eval_int.eval env ctx.Prog.hi in
        for v = lo to hi do
          go ((ctx.Prog.index, v) :: bindings) rest
        done
  in
  go [] s.Prog.loops

let iter_space s ~params =
  let acc = ref [] in
  walk s ~params (fun iter -> acc := iter :: !acc);
  List.rev !acc

let count s ~params =
  let n = ref 0 in
  walk s ~params (fun _ -> incr n);
  !n
