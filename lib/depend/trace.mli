(** Dynamic (trace-based) dependence analysis for concrete loop bounds: the
    program is walked in execution order recording every array reference, and
    flow / anti / output dependence edges are built between statement
    instances.  This drives the dataflow-partitioning branch of Algorithm 1
    on programs like the Cholesky kernel, where the exact statement-instance
    dependence graph is finite.

    Edges are stored compactly (parallel int arrays, destinations
    non-decreasing) so paper-scale traces (millions of instances) fit
    comfortably in memory. *)

type instance = {
  inst : int;  (** execution order, 0-based *)
  stmt : int;  (** statement id (see {!Loopir.Prog.stmt_info.id}) *)
  iter : int array;  (** values of the enclosing loop indices *)
}

type t = {
  instances : instance array;
  edge_src : int array;
  edge_dst : int array;  (** same length; [edge_src.(k) < edge_dst.(k)] *)
}

val n_edges : t -> int
val iter_edges : t -> (int -> int -> unit) -> unit
val edges : t -> (int * int) list
(** Materialized edge list (small traces / tests). *)

val build : Loopir.Ast.program -> params:(string * int) list -> t
(** [build prog ~params] normalizes [prog], binds its parameters, and builds
    the exact instance-level dependence graph.  Raises {!Diag.Error}
    ([Unbound_parameter]/[Unbound_variable]) for unbound names. *)

val build_result :
  Loopir.Ast.program -> params:(string * int) list -> (t, Diag.error) result
(** {!build} with the failure threaded as a result. *)
