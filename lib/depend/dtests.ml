module S = Numeric.Safeint
module L = Presburger.Linexpr
module C = Presburger.Constr
module P = Presburger.Poly

type verdict = Independent | Maybe_dependent

(* Per-test call + inconclusive counters.  "Inconclusive" means the test
   returned [Maybe_dependent]: for GCD/Banerjee that is the conservative
   answer, for the exact Omega test it means a genuine dependence. *)
let c_gcd = Obs.Counter.make "dtests.gcd"
let c_gcd_inconclusive = Obs.Counter.make "dtests.gcd_inconclusive"
let c_banerjee = Obs.Counter.make "dtests.banerjee"
let c_banerjee_inconclusive = Obs.Counter.make "dtests.banerjee_inconclusive"
let c_exact = Obs.Counter.make "dtests.exact"
let c_exact_dependent = Obs.Counter.make "dtests.exact_dependent"
let c_equations = Obs.Counter.make "dtests.equations_built"

let count_verdict inconclusive = function
  | Independent -> Independent
  | Maybe_dependent ->
      Obs.Counter.incr inconclusive;
      Maybe_dependent

let verdict_name = function
  | Independent -> "independent"
  | Maybe_dependent -> "maybe_dependent"

type equation = {
  a : int array;
  b : int array;
  c : int;
  lo : int array;
  hi : int array;
}

(* The dependence equation a·i - b·j + c = 0, written out so an event
   log reader sees what the test actually decided on. *)
let equation_str eq =
  let ints v = String.concat " " (Array.to_list (Array.map string_of_int v)) in
  Printf.sprintf "a=[%s] b=[%s] c=%d" (ints eq.a) (ints eq.b) eq.c

let gcd_test eq =
  Obs.Counter.incr c_gcd;
  let g =
    Array.fold_left S.gcd (Array.fold_left S.gcd 0 eq.a) eq.b
  in
  let v =
    if g = 0 then if eq.c = 0 then Maybe_dependent else Independent
    else if eq.c mod g <> 0 then Independent
    else Maybe_dependent
  in
  Obs.Event.emit ~scope:"depend" ~name:"test.gcd" (fun () ->
      [
        ("equation", Obs.Event.Str (equation_str eq));
        ("gcd", Obs.Event.Int g);
        ("verdict", Obs.Event.Str (verdict_name v));
        ( "why",
          Obs.Event.Str
            (if g = 0 then
               if eq.c = 0 then "all coefficients zero and c = 0"
               else "all coefficients zero but c <> 0"
             else if eq.c mod g <> 0 then
               Printf.sprintf "c = %d is not divisible by gcd %d" eq.c g
             else
               Printf.sprintf
                 "c = %d divisible by gcd %d: integer solutions exist" eq.c g)
        );
      ]);
  count_verdict c_gcd_inconclusive v

(* Banerjee: the value Σ aᵢ·iᵢ − Σ bⱼ·jⱼ over the bounds spans
   [Σ min(coef·range), Σ max(coef·range)]; no solution when -c is outside. *)
let banerjee_test eq =
  Obs.Counter.incr c_banerjee;
  let add_range (mn, mx) coef lo hi =
    if coef >= 0 then (S.add mn (S.mul coef lo), S.add mx (S.mul coef hi))
    else (S.add mn (S.mul coef hi), S.add mx (S.mul coef lo))
  in
  let range = ref (0, 0) in
  Array.iteri (fun k c -> range := add_range !range c eq.lo.(k) eq.hi.(k)) eq.a;
  Array.iteri
    (fun k c -> range := add_range !range (-c) eq.lo.(k) eq.hi.(k))
    eq.b;
  let mn, mx = !range in
  let v = if -eq.c < mn || -eq.c > mx then Independent else Maybe_dependent in
  Obs.Event.emit ~scope:"depend" ~name:"test.banerjee" (fun () ->
      [
        ("equation", Obs.Event.Str (equation_str eq));
        ("range_min", Obs.Event.Int mn);
        ("range_max", Obs.Event.Int mx);
        ("target", Obs.Event.Int (-eq.c));
        ("verdict", Obs.Event.Str (verdict_name v));
        ( "why",
          Obs.Event.Str
            (if v = Independent then
               Printf.sprintf "-c = %d lies outside the value range [%d, %d]"
                 (-eq.c) mn mx
             else
               Printf.sprintf "-c = %d lies inside the value range [%d, %d]"
                 (-eq.c) mn mx) );
      ]);
  count_verdict c_banerjee_inconclusive v

let combined eq =
  match gcd_test eq with
  | Independent -> Independent
  | Maybe_dependent -> banerjee_test eq

let equations_of_pair (p : Depeq.t) ~params ~lo ~hi =
  let m = p.Depeq.m in
  if Array.length lo <> m || Array.length hi <> m then
    invalid_arg "Dtests.equations_of_pair: bounds arity";
  List.init m (fun d ->
      Obs.Counter.incr c_equations;
      let a = Array.init m (fun k -> Linalg.Imat.get p.Depeq.a_mat k d) in
      let b = Array.init m (fun k -> Linalg.Imat.get p.Depeq.b_mat k d) in
      let c =
        S.sub
          (Loopir.Affine.eval params p.Depeq.a_off.(d))
          (Loopir.Affine.eval params p.Depeq.b_off.(d))
      in
      { a; b; c; lo; hi })

let exact eq =
  Obs.Counter.incr c_exact;
  let m = Array.length eq.a in
  let n = 2 * m in
  let coef = Array.make n 0 in
  Array.iteri (fun k v -> coef.(k) <- v) eq.a;
  Array.iteri (fun k v -> coef.(m + k) <- S.neg v) eq.b;
  let bounds =
    List.concat
      (List.init n (fun k ->
           let kk = k mod m in
           [
             C.Ge (L.add_const (L.var n k) (-eq.lo.(kk)));
             C.Ge (L.add_const (L.neg (L.var n k)) eq.hi.(kk));
           ]))
  in
  let p = P.make n (C.Eq (L.make coef eq.c) :: bounds) in
  let v =
    if Presburger.Omega.is_empty p then Independent else Maybe_dependent
  in
  Obs.Event.emit ~scope:"depend" ~name:"test.exact" (fun () ->
      [
        ("equation", Obs.Event.Str (equation_str eq));
        ("verdict", Obs.Event.Str (verdict_name v));
        ( "why",
          Obs.Event.Str
            (if v = Independent then
               "Omega test: the solution polyhedron is empty"
             else "Omega test: integer solutions exist within the bounds") );
      ]);
  count_verdict c_exact_dependent v
