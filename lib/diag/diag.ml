type stage = Analyze | Classify | Materialize | Schedule | Validate | Execute

let stage_name = function
  | Analyze -> "analyze"
  | Classify -> "classify"
  | Materialize -> "materialize"
  | Schedule -> "schedule"
  | Validate -> "validate"
  | Execute -> "execute"

let all_stages = [ Analyze; Classify; Materialize; Schedule; Validate; Execute ]

type error =
  | Unsupported of string
  | Unbound_parameter of string
  | Unbound_variable of string
  | Param_arity of { expected : int; got : int }
  | Singular_recurrence of string
  | Lemma1_violation of string
  | Chain_cover of { covered : int; expected : int }
  | Outside_partition of string
  | Set_blowup of string
  | Dataflow_step_limit of int
  | Illegal_schedule of string
  | Semantic_mismatch of string
  | Invalid_thread_count of int

exception Error of error

let to_string = function
  | Unsupported m -> "unsupported program: " ^ m
  | Unbound_parameter p -> Printf.sprintf "parameter %s not bound" p
  | Unbound_variable v -> Printf.sprintf "unbound variable %s" v
  | Param_arity { expected; got } ->
      Printf.sprintf "expected %d parameter value(s), got %d" expected got
  | Singular_recurrence m -> "singular recurrence: " ^ m
  | Lemma1_violation m -> "Lemma 1 violated: " ^ m
  | Chain_cover { covered; expected } ->
      Printf.sprintf "chains cover %d of %d intermediate iterations" covered
        expected
  | Outside_partition m -> "iteration outside the partition: " ^ m
  | Set_blowup m -> "set algebra work budget exceeded: " ^ m
  | Dataflow_step_limit n ->
      Printf.sprintf "dataflow peeling did not terminate within %d steps" n
  | Illegal_schedule m -> "illegal schedule: " ^ m
  | Semantic_mismatch m -> "semantic mismatch: " ^ m
  | Invalid_thread_count n -> Printf.sprintf "invalid thread count %d" n

let label = function
  | Unsupported _ -> "unsupported"
  | Unbound_parameter _ -> "unbound-parameter"
  | Unbound_variable _ -> "unbound-variable"
  | Param_arity _ -> "param-arity"
  | Singular_recurrence _ -> "singular-recurrence"
  | Lemma1_violation _ -> "lemma1-violation"
  | Chain_cover _ -> "chain-cover"
  | Outside_partition _ -> "outside-partition"
  | Set_blowup _ -> "set-blowup"
  | Dataflow_step_limit _ -> "dataflow-step-limit"
  | Illegal_schedule _ -> "illegal-schedule"
  | Semantic_mismatch _ -> "semantic-mismatch"
  | Invalid_thread_count _ -> "invalid-thread-count"

let fail e = raise (Error e)
let result f = match f () with v -> Ok v | exception Error e -> Error e

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Diag.Error: " ^ to_string e)
    | _ -> None)
