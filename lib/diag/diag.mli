(** Structured diagnostics shared by every layer of the partitioning
    pipeline.

    Historically failures surfaced as [failwith]/[invalid_arg] strings
    scattered across the analysis and partitioning libraries; the pipeline
    driver threads them as [('a, error) result] instead, so frontends can
    react to the {e kind} of failure (degrade to another strategy, report,
    retry with different parameters) rather than parse messages.

    This library sits below [depend]/[core]/[runtime]: those libraries
    raise {!Error} at the point of failure and the pipeline layer catches
    it at stage boundaries ({!result}). *)

(** The six pipeline stages, in order. *)
type stage =
  | Analyze  (** exact dependence solving *)
  | Classify  (** Algorithm 1 strategy selection *)
  | Materialize  (** concrete partition at bound parameters *)
  | Schedule  (** phase/barrier schedule construction *)
  | Validate  (** legality + semantic checking *)
  | Execute  (** multicore execution / cost model *)

val stage_name : stage -> string
val all_stages : stage list

type error =
  | Unsupported of string
      (** program shape outside the strategy's hypotheses (imperfect nest,
          no coupled pair, rank-deficient coefficients, …) *)
  | Unbound_parameter of string
      (** a symbolic loop bound was not given a value *)
  | Unbound_variable of string
      (** a non-index, non-parameter variable appeared in a bound/subscript *)
  | Param_arity of { expected : int; got : int }
      (** concrete parameter vector has the wrong length *)
  | Singular_recurrence of string
      (** a coupled-pair coefficient matrix is singular: no recurrence map *)
  | Lemma1_violation of string
      (** chain walk bifurcated or left the partition — the Lemma 1
          hypotheses do not hold for this instance *)
  | Chain_cover of { covered : int; expected : int }
      (** the chains cover only [covered] of the [expected] intermediate
          iterations *)
  | Outside_partition of string
      (** a scanned iteration fell outside [P1 ∪ P2 ∪ P3] *)
  | Set_blowup of string
      (** the symbolic set algebra exceeded its work budget *)
  | Dataflow_step_limit of int
      (** symbolic dataflow peeling did not terminate within the limit *)
  | Illegal_schedule of string
      (** a dependence edge is violated or an instance is duplicated *)
  | Semantic_mismatch of string
      (** executed arrays differ from the sequential run *)
  | Invalid_thread_count of int  (** thread count ≤ 0 where not permitted *)

exception Error of error

val to_string : error -> string
(** Human-readable one-line rendering. *)

val label : error -> string
(** Stable machine-readable tag ("unsupported", "chain-cover", …) for JSON
    reports and tests. *)

val fail : error -> 'a
(** [fail e] raises [Error e]. *)

val result : (unit -> 'a) -> ('a, error) result
(** Runs the thunk, catching {!Error} as [Error e]. Other exceptions
    propagate. *)
