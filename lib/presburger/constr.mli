(** Atomic Presburger constraints over a fixed variable space.

    Three forms close the representation under every operation the
    partitioner needs (intersection, exact projection, exact difference):
    equalities, inequalities, and divisibility ("stride") constraints. *)

type t =
  | Eq of Linexpr.t  (** [e = 0] *)
  | Ge of Linexpr.t  (** [e ≥ 0] *)
  | Div of int * Linexpr.t  (** [m | e] with modulus [m ≥ 2] *)

type norm =
  | Keep of t  (** normalized, non-trivial *)
  | Tautology  (** always true: drop *)
  | Contradiction  (** always false: the polyhedron is empty *)

val normalize : t -> norm
(** [normalize c] gcd-reduces coefficients (tightening inequalities), reduces
    divisibility moduli, and detects ground tautologies/contradictions. *)

val negate : t -> t list
(** [negate c] is a list of constraints whose {e disjunction} is the negation
    of [c].  [Ge e ↦ [Ge (-e-1)]]; [Eq e ↦ [Ge (e-1); Ge (-e-1)]];
    [Div (m,e) ↦ [Div (m, e-r) | r = 1..m-1]]. *)

val holds : t -> int array -> bool
(** [holds c xs] evaluates [c] at the integer point [xs]. *)

val dim : t -> int
val expr : t -> Linexpr.t
val uses : t -> int -> bool
val map_expr : (Linexpr.t -> Linexpr.t) -> t -> t
val equal : t -> t -> bool
(** Physical equality is checked first (O(1) on hash-consed values). *)

val compare : t -> t -> int

val feed : Numeric.Digest.t -> t -> Numeric.Digest.t
(** Feeds the constraint (with a form tag) into a running content digest. *)

val pp : string array -> Format.formatter -> t -> unit
