module P = Poly
module D = Numeric.Digest

type t = {
  inn : string array;
  out : string array;
  params : string array;
  polys : Poly.t list;
}

let dim_of inn out params =
  Array.length inn + Array.length out + Array.length params

let make ~inn ~out ~params polys =
  let n = dim_of inn out params in
  List.iter
    (fun p -> if P.dim p <> n then invalid_arg "Rel.make: dimension mismatch")
    polys;
  { inn; out; params; polys = List.map P.intern polys }

let empty ~inn ~out ~params = make ~inn ~out ~params []
let dim r = dim_of r.inn r.out r.params
let names r = Array.concat [ r.inn; r.out; r.params ]
let polys r = r.polys

(* Name arrays are usually shared physically between derived relations, so
   the [==] checks settle the common case before the structural compare. *)
let names_equal a b = a == b || a = b

let check_space a b =
  if
    not
      (a == b
      || (names_equal a.inn b.inn && names_equal a.out b.out
         && names_equal a.params b.params))
  then invalid_arg "Rel: space mismatch"

let feed_names d ns =
  Array.fold_left
    (fun d n -> D.add_char (D.add_string d n) '\x00')
    (D.add_int d (Array.length ns))
    ns

let digest r =
  List.fold_left
    (fun d p -> D.add_digest d (P.digest p))
    (feed_names (feed_names (feed_names D.seed r.inn) r.out) r.params)
    r.polys

(* Same duplicate-disjunct fix as {!Iset.union}: digests make the dedup one
   table probe per disjunct. *)
let dedup_polys polys =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun p ->
      let d = P.digest p in
      if Hashtbl.mem seen d then false
      else begin
        Hashtbl.add seen d ();
        true
      end)
    polys

let union a b =
  check_space a b;
  if a.polys == b.polys then a
  else { a with polys = dedup_polys (a.polys @ b.polys) }

let inter a b =
  check_space a b;
  { a with polys = Dnf.inter a.polys b.polys }

let diff a b =
  check_space a b;
  { a with polys = Dnf.diff a.polys b.polys }

let is_empty r = Dnf.is_empty r.polys

let equal a b =
  check_space a b;
  a == b || a.polys == b.polys || Dnf.equal a.polys b.polys

let simplify ?aggressive r = { r with polys = Dnf.simplify ?aggressive r.polys }

let inverse r =
  let ni = Array.length r.inn and no = Array.length r.out in
  let n = dim r in
  let perm =
    Array.init n (fun k ->
        if k < ni then no + k
        else if k < ni + no then k - ni
        else k)
  in
  {
    inn = r.out;
    out = r.inn;
    params = r.params;
    polys = List.map (fun p -> P.remap p n perm) r.polys;
  }

(* Relation-level memo tables hold the result's disjunct list (already
   interned by the Dnf layer); the cheap name bookkeeping is redone per
   call.  Keys are the relation content digest, which covers the name
   arrays, so two same-shaped relations with different labels do not
   collide. *)
let memo_dom : P.t list Hc.memo = Hc.memo ~name:"rel.dom" ~capacity:4096 ()
let memo_ran : P.t list Hc.memo = Hc.memo ~name:"rel.ran" ~capacity:4096 ()

let memo_compose : P.t list Hc.memo =
  Hc.memo ~name:"rel.compose" ~capacity:4096 ()

let dom r =
  let ni = Array.length r.inn and no = Array.length r.out in
  let outs = List.init no (fun k -> ni + k) in
  let polys =
    Hc.get memo_dom (digest r) (fun () -> Dnf.project_out r.polys outs)
  in
  Iset.make ~iters:r.inn ~params:r.params polys

let ran r =
  let ni = Array.length r.inn in
  let ins = List.init ni (fun k -> k) in
  let polys =
    Hc.get memo_ran (digest r) (fun () -> Dnf.project_out r.polys ins)
  in
  Iset.make ~iters:r.out ~params:r.params polys

let to_set r =
  Iset.make ~iters:(Array.append r.inn r.out) ~params:r.params r.polys

(* Embed a set over [block ⧺ params] into the relation space, with the
   block starting at [off]. *)
let embed_set r ~off s =
  let n = dim r in
  let nb = Iset.n_iters s in
  let np = Array.length r.params in
  if Array.length (Iset.names s) - nb <> np then invalid_arg "Rel: params";
  let perm =
    Array.init (nb + np) (fun k ->
        if k < nb then off + k
        else Array.length r.inn + Array.length r.out + (k - nb))
  in
  List.map (fun p -> P.remap p n perm) (Iset.polys s)

let restrict_dom r s =
  if Iset.n_iters s <> Array.length r.inn then
    invalid_arg "Rel.restrict_dom: arity";
  { r with polys = Dnf.inter r.polys (embed_set r ~off:0 s) }

let restrict_ran r s =
  if Iset.n_iters s <> Array.length r.out then
    invalid_arg "Rel.restrict_ran: arity";
  { r with polys = Dnf.inter r.polys (embed_set r ~off:(Array.length r.inn) s) }

let compose r s =
  if Array.length r.out <> Array.length s.inn then
    invalid_arg "Rel.compose: arity mismatch";
  if r.params <> s.params then invalid_arg "Rel.compose: params mismatch";
  let na = Array.length r.inn
  and nb = Array.length r.out
  and nc = Array.length s.out
  and np = Array.length r.params in
  let n = na + nb + nc + np in
  let perm_r =
    Array.init (na + nb + np) (fun k ->
        if k < na + nb then k else k + nc)
  in
  let perm_s =
    Array.init (nb + nc + np) (fun k -> na + k)
  in
  let polys =
    Hc.get memo_compose (D.add_digest (digest r) (digest s)) @@ fun () ->
    let pr = List.map (fun p -> P.remap p n perm_r) r.polys in
    let ps = List.map (fun p -> P.remap p n perm_s) s.polys in
    let joined = Dnf.inter pr ps in
    let mids = List.init nb (fun k -> na + k) in
    Dnf.project_out joined mids
  in
  { inn = r.inn; out = s.out; params = r.params; polys }

let lex_forward r =
  let ni = Array.length r.inn in
  if ni <> Array.length r.out then invalid_arg "Rel.lex_forward: arity";
  let order = Lex.lt ~n_total:(dim r) ~fst_off:0 ~snd_off:ni ~len:ni in
  { r with polys = Dnf.inter r.polys order }

let symmetric_closure_forward r =
  if Array.length r.inn <> Array.length r.out then
    invalid_arg "Rel.symmetric_closure_forward: arity";
  (* The inverse keeps the original tuple names: both orientations live in
     the same space before the ≺ filter picks the forward arrows. *)
  let inv = { (inverse r) with inn = r.inn; out = r.out } in
  lex_forward (union r inv)

let bind_point r ~params i =
  let ni = Array.length r.inn
  and no = Array.length r.out
  and np = Array.length r.params in
  if Array.length i <> ni then invalid_arg "Rel: point arity";
  if Array.length params <> np then invalid_arg "Rel: params arity";
  List.map
    (fun p ->
      let p = ref p in
      Array.iteri (fun k v -> p := P.assign !p k v) i;
      Array.iteri (fun k v -> p := P.assign !p (ni + no + k) v) params;
      for k = np - 1 downto 0 do
        p := P.drop_dim !p (ni + no + k)
      done;
      for k = ni - 1 downto 0 do
        p := P.drop_dim !p k
      done;
      !p)
    r.polys

let image r ~params i = Enum.points_polys (Array.length r.out) (bind_point r ~params i)

let preimage r ~params j = image (inverse r) ~params j

let mem r ~params i j =
  Dnf.mem r.polys (Array.concat [ i; j; params ])

let pp ppf r =
  let nm = names r in
  if r.polys = [] then Format.pp_print_string ppf "{ }"
  else
    Format.fprintf ppf "@[<v>%a@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,∪ ")
         (fun ppf p -> Format.fprintf ppf "{ %a }" (P.pp nm) p))
      r.polys
