module C = Constr
module P = Poly
module D = Numeric.Digest

(* ---- parallel disjunct elimination ---------------------------------- *)

(* The presburger layer sits below Runtime in the dependency order, so the
   worker pool is injected: Runtime.Workers installs a runner that executes
   an array of jobs on its domains ([Svc.Service] shares its exec pool this
   way).  Without a runner — or below the threshold, or when already inside
   a parallel disjunct job (the pool forbids nested barriers) — the work
   runs sequentially on the caller. *)
let runner : ((unit -> unit) array -> unit) option Atomic.t = Atomic.make None
let set_runner r = Atomic.set runner r
let par_threshold = 4
let in_par_job : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let par_map f xs =
  match Atomic.get runner with
  | None -> List.map f xs
  | Some run ->
      if !(Domain.DLS.get in_par_job) then List.map f xs
      else
        let arr = Array.of_list xs in
        let n = Array.length arr in
        if n < par_threshold then List.map f xs
        else begin
          let out = Array.make n None in
          let job i () =
            (* The flag is per executing domain: a job that re-enters the
               Dnf layer (e.g. remove_redundant → Omega.is_empty) stays
               sequential instead of submitting a nested barrier. *)
            let flag = Domain.DLS.get in_par_job in
            flag := true;
            Fun.protect
              ~finally:(fun () -> flag := false)
              (fun () -> out.(i) <- Some (f arr.(i)))
          in
          run (Array.init n job);
          Array.to_list
            (Array.map (function Some v -> v | None -> assert false) out)
        end

(* ---- memo tables ----------------------------------------------------- *)

(* Operator-level memoization over whole disjunct lists, keyed by the
   order-sensitive fold of the element digests.  Each operator has its own
   table, so keys need no operator tag. *)
let polys_digest ps =
  List.fold_left
    (fun d p -> D.add_digest d (P.digest p))
    (D.add_int D.seed (List.length ps))
    ps

let pair_digest a b = D.add_digest (polys_digest a) (polys_digest b)

let memo_inter : P.t list Hc.memo = Hc.memo ~name:"dnf.inter" ~capacity:4096 ()
let memo_diff : P.t list Hc.memo = Hc.memo ~name:"dnf.diff" ~capacity:4096 ()

let memo_simplify : P.t list Hc.memo =
  Hc.memo ~name:"dnf.simplify" ~capacity:4096 ()

(* ---- operators ------------------------------------------------------- *)

let inter a b =
  Hc.get memo_inter (pair_digest a b) @@ fun () ->
  List.map P.intern
    (List.concat_map (fun pa -> List.map (fun pb -> P.inter pa pb) b) a)

(* a \ b as the disjoint refinement: walking b's constraints c1..cm, emit
   a ∧ c1 ∧ … ∧ c_{i-1} ∧ ¬c_i. *)
let poly_diff a b =
  let pieces = ref [] in
  let prefix = ref a in
  List.iter
    (fun c ->
      List.iter
        (fun nc -> pieces := P.add_constr !prefix nc :: !pieces)
        (C.negate c);
      prefix := P.add_constr !prefix c)
    (P.constraints b);
  List.rev !pieces

let max_diff_disjuncts = 20_000

(* Emptiness filtering dominates [diff]/[simplify]; the disjuncts are
   independent, so they go through the worker pool when one is installed. *)
let filter_nonempty polys =
  par_map (fun p -> if Omega.is_empty p then None else Some p) polys
  |> List.filter_map Fun.id

let diff a b =
  Hc.get memo_diff (pair_digest a b) @@ fun () ->
  (* Pruning empty pieces at every step keeps the worklist from exploding
     exponentially on high-dimensional unions; a hard cap turns the
     remaining pathological cases into a loud {!Omega.Blowup}. *)
  List.map P.intern
    (List.fold_left
       (fun acc pb ->
         if List.length acc > max_diff_disjuncts then
           raise (Omega.Blowup "difference produced too many disjuncts");
         List.concat_map (fun pa -> poly_diff pa pb) acc
         |> List.filter_map P.normalize
         |> filter_nonempty)
       (filter_nonempty a)
       b)

let is_empty polys = List.for_all Fun.id (par_map Omega.is_empty polys)
let subset a b = is_empty (diff a b)
let equal a b = subset a b && subset b a

let project_out polys ks =
  List.concat (par_map (fun p -> Omega.project_out p ks) polys)

(* Constraint c is redundant in p when p minus c still implies c. *)
let remove_redundant p =
  let implied rest c =
    List.for_all
      (fun nc -> Omega.is_empty (P.add_constr (P.make (P.dim p) rest) nc))
      (C.negate c)
  in
  let rec go kept = function
    | [] -> List.rev kept
    | c :: rest -> (
        match c with
        | C.Ge _ | C.Div (_, _) ->
            if implied (List.rev_append kept rest) c then go kept rest
            else go (c :: kept) rest
        | C.Eq _ -> go (c :: kept) rest)
  in
  P.with_cons p (go [] (P.constraints p))

let poly_subset_poly a b =
  List.for_all
    (fun c ->
      List.for_all (fun nc -> Omega.is_empty (P.add_constr a nc)) (C.negate c))
    (P.constraints b)

let simplify ?(aggressive = false) polys =
  let key = D.add_char (polys_digest polys) (if aggressive then 'a' else 'p') in
  Hc.get memo_simplify key @@ fun () ->
  let polys =
    (* Per-disjunct normalization, emptiness, and redundancy removal are
       independent — one parallel job per disjunct. *)
    par_map
      (fun p ->
        match P.normalize p with
        | Some p when not (Omega.is_empty p) -> P.normalize (remove_redundant p)
        | Some _ | None -> None)
      polys
    |> List.filter_map Fun.id
  in
  (* Drop syntactic duplicates cheaply. *)
  let polys =
    List.fold_left
      (fun acc p ->
        if List.exists (P.equal_syntactic p) acc then acc else p :: acc)
      [] polys
    |> List.rev
  in
  List.map P.intern
    (if not aggressive then polys
     else
       (* Drop disjuncts subsumed by another (kept) disjunct. *)
       let rec go kept = function
         | [] -> List.rev kept
         | p :: rest ->
             if
               List.exists (fun q -> poly_subset_poly p q) rest
               || List.exists (fun q -> poly_subset_poly p q) kept
             then go kept rest
             else go (p :: kept) rest
       in
       go [] polys)

let mem polys xs = List.exists (fun p -> P.mem p xs) polys
