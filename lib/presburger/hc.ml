(* Content-addressed node and memo tables for the presburger layer.

   Every table is keyed by a 128-bit Numeric.Digest (the same FNV-1a
   discipline as Svc.Key) and digest equality is treated as definitive:
   a hit returns the stored value without re-checking the inputs
   structurally.  Tables are sharded with per-shard mutexes and a
   per-shard intrusive LRU list, modeled on Svc.Cache, so they stay
   capacity-bounded under unbounded batch/serve traffic — eviction only
   costs a recomputation, never correctness.

   Counters are registered per table as presburger.memo.<name>.{hits,
   misses,evictions}; Pipeline.Report and `recpart explain` surface them
   through the generic Obs.Metrics diff. *)

module D = Numeric.Digest

type 'v node = {
  nkey : D.t;
  mutable value : 'v;
  mutable prev : 'v node option;
  mutable next : 'v node option;
}

type 'v shard = {
  m : Mutex.t;
  tbl : (D.t, 'v node) Hashtbl.t;
  mutable head : 'v node option; (* most recently used *)
  mutable tail : 'v node option; (* least recently used *)
  mutable size : int;
  cap : int;
}

type 'v memo = {
  shards : 'v shard array;
  hits : Obs.Counter.t;
  misses : Obs.Counter.t;
  evictions : Obs.Counter.t;
}

(* Memoization is process-wide and on by default; tests flip it off to
   compute unmemoized reference results, benches clear the tables to
   measure a cold analyze.  The registry keeps one clear thunk and the
   counter triple per table. *)
let enabled_flag = Atomic.make true
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

type entry = {
  e_clear : unit -> unit;
  e_hits : Obs.Counter.t;
  e_misses : Obs.Counter.t;
  e_evictions : Obs.Counter.t;
}

let registry : entry list ref = ref []
let registry_m = Mutex.create ()

let locked sh f =
  Mutex.lock sh.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.m) f

let clear_shard sh =
  locked sh (fun () ->
      Hashtbl.reset sh.tbl;
      sh.head <- None;
      sh.tail <- None;
      sh.size <- 0)

let memo ?(shards = 8) ~name ~capacity () =
  if capacity <= 0 then invalid_arg "Hc.memo: capacity must be > 0";
  let shards = max 1 shards in
  let per_shard = (capacity + shards - 1) / shards in
  let t =
    {
      shards =
        Array.init shards (fun _ ->
            {
              m = Mutex.create ();
              tbl = Hashtbl.create 16;
              head = None;
              tail = None;
              size = 0;
              cap = per_shard;
            });
      hits = Obs.Counter.make (Printf.sprintf "presburger.memo.%s.hits" name);
      misses =
        Obs.Counter.make (Printf.sprintf "presburger.memo.%s.misses" name);
      evictions =
        Obs.Counter.make (Printf.sprintf "presburger.memo.%s.evictions" name);
    }
  in
  Mutex.lock registry_m;
  registry :=
    {
      e_clear = (fun () -> Array.iter clear_shard t.shards);
      e_hits = t.hits;
      e_misses = t.misses;
      e_evictions = t.evictions;
    }
    :: !registry;
  Mutex.unlock registry_m;
  t

let clear_all () =
  Mutex.lock registry_m;
  let entries = !registry in
  Mutex.unlock registry_m;
  List.iter (fun e -> e.e_clear ()) entries

type totals = { hits : int; misses : int; evictions : int }

let totals () =
  Mutex.lock registry_m;
  let entries = !registry in
  Mutex.unlock registry_m;
  List.fold_left
    (fun acc e ->
      {
        hits = acc.hits + Obs.Counter.value e.e_hits;
        misses = acc.misses + Obs.Counter.value e.e_misses;
        evictions = acc.evictions + Obs.Counter.value e.e_evictions;
      })
    { hits = 0; misses = 0; evictions = 0 }
    entries

let shard_of t k = t.shards.(D.hash k mod Array.length t.shards)

(* List surgery below runs under the shard mutex. *)

let unlink sh n =
  (match n.prev with Some p -> p.next <- n.next | None -> sh.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> sh.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front sh n =
  n.next <- sh.head;
  n.prev <- None;
  (match sh.head with Some h -> h.prev <- Some n | None -> sh.tail <- Some n);
  sh.head <- Some n

let find t k =
  let sh = shard_of t k in
  locked sh (fun () ->
      match Hashtbl.find_opt sh.tbl k with
      | Some n ->
          unlink sh n;
          push_front sh n;
          Obs.Counter.incr t.hits;
          Some n.value
      | None ->
          Obs.Counter.incr t.misses;
          None)

let add t k v =
  let sh = shard_of t k in
  locked sh (fun () ->
      match Hashtbl.find_opt sh.tbl k with
      | Some n ->
          n.value <- v;
          unlink sh n;
          push_front sh n
      | None ->
          let n = { nkey = k; value = v; prev = None; next = None } in
          Hashtbl.replace sh.tbl k n;
          push_front sh n;
          sh.size <- sh.size + 1;
          if sh.size > sh.cap then begin
            match sh.tail with
            | Some lru ->
                unlink sh lru;
                Hashtbl.remove sh.tbl lru.nkey;
                sh.size <- sh.size - 1;
                Obs.Counter.incr t.evictions
            | None -> assert false
          end)

(* The compute runs outside the shard lock: concurrent misses on the same
   key both compute and both store (last write wins) — duplicated work,
   never an inconsistent table.  An exception from [f] propagates and
   caches nothing. *)
let get t k f =
  if not (Atomic.get enabled_flag) then f ()
  else
    match find t k with
    | Some v -> v
    | None ->
        let v = f () in
        add t k v;
        v

let length t =
  Array.fold_left
    (fun acc sh -> acc + locked sh (fun () -> sh.size))
    0 t.shards
