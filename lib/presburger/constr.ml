module S = Numeric.Safeint
module L = Linexpr

type t = Eq of L.t | Ge of L.t | Div of int * L.t
type norm = Keep of t | Tautology | Contradiction

let dim = function Eq e | Ge e | Div (_, e) -> L.dim e
let expr = function Eq e | Ge e | Div (_, e) -> e
let uses c k = L.uses (expr c) k

let map_expr f = function
  | Eq e -> Eq (f e)
  | Ge e -> Ge (f e)
  | Div (m, e) -> Div (m, f e)

let normalize c =
  match c with
  | Ge e ->
      let g = L.content e in
      if g = 0 then if L.constant e >= 0 then Tautology else Contradiction
      else if g = 1 then Keep (Ge e)
      else
        (* Σ(c/g)x + ⌊k/g⌋ ≥ 0 is the integer tightening of e ≥ 0. *)
        Keep
          (Ge
             {
               L.n = L.dim e;
               coef = Array.map (fun x -> x / g) e.L.coef;
               const = S.fdiv (L.constant e) g;
             })
  | Eq e ->
      let g = L.content e in
      if g = 0 then if L.constant e = 0 then Tautology else Contradiction
      else if L.constant e mod g <> 0 then Contradiction
      else if g = 1 then Keep (Eq e)
      else
        Keep
          (Eq
             {
               L.n = L.dim e;
               coef = Array.map (fun x -> x / g) e.L.coef;
               const = L.constant e / g;
             })
  | Div (m, e) ->
      let m = S.abs m in
      if m = 0 then invalid_arg "Constr.Div: zero modulus";
      if m = 1 then Tautology
      else
        (* Reduce coefficients modulo m; m | e is invariant under it. *)
        let coef = Array.map (fun x -> S.emod x m) e.L.coef in
        let const = S.emod (L.constant e) m in
        let g = Array.fold_left S.gcd 0 coef in
        if g = 0 then if const mod m = 0 then Tautology else Contradiction
        else
          let g = S.gcd g (S.gcd const m) in
          let m' = m / g in
          if m' = 1 then Tautology
          else
            let e' =
              {
                L.n = L.dim e;
                coef = Array.map (fun x -> x / g) coef;
                const = const / g;
              }
            in
            Keep (Div (m', e'))

let negate = function
  | Ge e -> [ Ge (L.add_const (L.neg e) (-1)) ]
  | Eq e -> [ Ge (L.add_const e (-1)); Ge (L.add_const (L.neg e) (-1)) ]
  | Div (m, e) ->
      List.init (m - 1) (fun i -> Div (m, L.add_const e (-(i + 1))))

let holds c xs =
  match c with
  | Eq e -> L.eval e xs = 0
  | Ge e -> L.eval e xs >= 0
  | Div (m, e) -> S.emod (L.eval e xs) m = 0

let equal a b =
  a == b
  ||
  match (a, b) with
  | Eq x, Eq y | Ge x, Ge y -> L.equal x y
  | Div (m, x), Div (n, y) -> m = n && L.equal x y
  | _ -> false

let compare = Stdlib.compare

(* A tag byte keeps the three forms (and Div moduli) from colliding in the
   content digest. *)
let feed d c =
  let module D = Numeric.Digest in
  match c with
  | Eq e -> L.feed (D.add_char d 'E') e
  | Ge e -> L.feed (D.add_char d 'G') e
  | Div (m, e) -> L.feed (D.add_int (D.add_char d 'D') m) e

let pp names ppf = function
  | Eq e -> Format.fprintf ppf "%a = 0" (L.pp names) e
  | Ge e -> Format.fprintf ppf "%a >= 0" (L.pp names) e
  | Div (m, e) -> Format.fprintf ppf "%d | %a" m (L.pp names) e
