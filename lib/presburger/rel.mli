(** Integer relations between two named tuples, with trailing symbolic
    parameters — the dependence relations [Rd] of the paper.

    The underlying variable order is [inn ⧺ out ⧺ params]. *)

type t = private {
  inn : string array;
  out : string array;
  params : string array;
  polys : Poly.t list;
}

val make :
  inn:string array ->
  out:string array ->
  params:string array ->
  Poly.t list ->
  t

val empty : inn:string array -> out:string array -> params:string array -> t
val dim : t -> int
val names : t -> string array
val polys : t -> Poly.t list
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val is_empty : t -> bool
val equal : t -> t -> bool

val digest : t -> Numeric.Digest.t
(** Content digest of the three name tuples and the (order-sensitive)
    disjunct digests; memo key for {!dom}/{!ran}/{!compose}. *)

val simplify : ?aggressive:bool -> t -> t

val inverse : t -> t
(** [inverse r] swaps input and output tuples. *)

val dom : t -> Iset.t
(** [dom r] projects onto the input tuple. *)

val ran : t -> Iset.t
(** [ran r] projects onto the output tuple. *)

val to_set : t -> Iset.t
(** [to_set r] reads the relation as a set over [inn ⧺ out]. *)

val restrict_dom : t -> Iset.t -> t
(** [restrict_dom r s] keeps pairs whose input lies in [s] (a set over
    [inn], same params). *)

val restrict_ran : t -> Iset.t -> t

val compose : t -> t -> t
(** [compose r s] is [{(a,c) | ∃b. (a,b) ∈ r ∧ (b,c) ∈ s}]; requires
    [r.out] and [s.inn] to have the same length and both relations the same
    parameters. *)

val lex_forward : t -> t
(** [lex_forward r] keeps the pairs with [inn ≺ out] (requires equal tuple
    lengths) — the orientation used to build the paper's [Rd]. *)

val symmetric_closure_forward : t -> t
(** [(r ∪ r⁻¹) ∧ (inn ≺ out)]: the paper's eq. 4 — every dependence drawn as
    an arrow from the lexicographically earlier iteration. *)

val image : t -> params:int array -> int array -> int array list
(** [image r ~params i] enumerates the successors of the concrete iteration
    [i] under bound parameters. *)

val preimage : t -> params:int array -> int array -> int array list
val mem : t -> params:int array -> int array -> int array -> bool
val pp : Format.formatter -> t -> unit
