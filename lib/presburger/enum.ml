module S = Numeric.Safeint
module L = Linexpr
module C = Constr
module P = Poly

exception Unbounded of string

(* Values of the single variable of a 1-D polyhedron. *)
let values_1d p =
  match P.normalize p with
  | None -> []
  | Some p ->
      let lo = ref None and hi = ref None in
      List.iter
        (fun c ->
          match c with
          | C.Ge e ->
              let a = L.coeff e 0 and k = L.constant e in
              if a > 0 then
                (* a·x + k ≥ 0 ⟺ x ≥ ⌈-k/a⌉ *)
                let b = S.cdiv (-k) a in
                lo := Some (match !lo with None -> b | Some l -> max l b)
              else if a < 0 then
                let b = S.fdiv k (-a) in
                hi := Some (match !hi with None -> b | Some h -> min h b)
          | C.Eq e ->
              let a = L.coeff e 0 and k = L.constant e in
              if a <> 0 then
                (* a·x + k = 0 has an integer solution iff a | k; Euclidean
                   remainder and floor division give exact divisibility
                   semantics for negative coefficients too (the Ge branch
                   already goes through Safeint). *)
                if S.emod k a = 0 then begin
                  let v = S.fdiv (S.neg k) a in
                  lo := Some (match !lo with None -> v | Some l -> max l v);
                  hi := Some (match !hi with None -> v | Some h -> min h v)
                end
                else begin
                  (* No integer solution. *)
                  lo := Some 1;
                  hi := Some 0
                end
          | C.Div _ -> ())
        (P.constraints p);
      match (!lo, !hi) with
      | Some lo, Some hi ->
          let rec go v acc =
            if v < lo then acc
            else if P.mem p [| v |] then go (v - 1) (v :: acc)
            else go (v - 1) acc
          in
          go hi []
      | _ ->
          raise
            (Unbounded "Enum: set unbounded (symbolic parameter left free?)")

module IntSet = Set.Make (Int)

let first_var_values p =
  let n = P.dim p in
  let one_d = Omega.project_out p (List.init (n - 1) (fun j -> j + 1)) in
  List.concat_map values_1d one_d |> List.sort_uniq compare

let rec enum n polys =
  if polys = [] then []
  else if n = 0 then
    if List.exists (fun p -> P.normalize p <> None) polys then [ [] ] else []
  else if n = 1 then
    List.concat_map values_1d polys |> List.sort_uniq compare
    |> List.map (fun v -> [ v ])
  else
    let per_poly =
      List.filter_map
        (fun p ->
          match P.normalize p with
          | None -> None
          | Some p -> (
              match first_var_values p with
              | [] -> None
              | vals -> Some (p, IntSet.of_list vals)))
        polys
    in
    let all_vals =
      List.fold_left
        (fun acc (_, s) -> IntSet.union acc s)
        IntSet.empty per_poly
    in
    List.concat_map
      (fun v ->
        let children =
          List.filter_map
            (fun (p, vals) ->
              if IntSet.mem v vals then Some (P.drop_dim (P.assign p 0 v) 0)
              else None)
            per_poly
        in
        List.map (fun suffix -> v :: suffix) (enum (n - 1) children))
      (IntSet.elements all_vals)

let points_polys n polys = List.map Array.of_list (enum n polys)

let points s =
  if Array.length (Iset.names s) <> Iset.n_iters s then
    invalid_arg "Enum.points: parameters must be bound first";
  points_polys (Iset.dim s) (Iset.polys s)

(* Counting mirrors [enum] exactly — same recursion, same per-dimension
   deduplication across disjuncts — but sums sub-counts instead of
   building tuple lists, so counting a set allocates nothing proportional
   to its cardinality. *)
let rec count n polys =
  if polys = [] then 0
  else if n = 0 then
    if List.exists (fun p -> P.normalize p <> None) polys then 1 else 0
  else if n = 1 then
    List.length (List.concat_map values_1d polys |> List.sort_uniq compare)
  else
    let per_poly =
      List.filter_map
        (fun p ->
          match P.normalize p with
          | None -> None
          | Some p -> (
              match first_var_values p with
              | [] -> None
              | vals -> Some (p, IntSet.of_list vals)))
        polys
    in
    let all_vals =
      List.fold_left
        (fun acc (_, s) -> IntSet.union acc s)
        IntSet.empty per_poly
    in
    IntSet.fold
      (fun v acc ->
        let children =
          List.filter_map
            (fun (p, vals) ->
              if IntSet.mem v vals then Some (P.drop_dim (P.assign p 0 v) 0)
              else None)
            per_poly
        in
        acc + count (n - 1) children)
      all_vals 0

let cardinal s =
  if Array.length (Iset.names s) <> Iset.n_iters s then
    invalid_arg "Enum.cardinal: parameters must be bound first";
  count (Iset.dim s) (Iset.polys s)
