module S = Numeric.Safeint

type t = { n : int; coef : int array; const : int }

let make coef const = { n = Array.length coef; coef = Array.copy coef; const }
let zero n = { n; coef = Array.make n 0; const = 0 }
let const n c = { n; coef = Array.make n 0; const = c }

let var n k =
  if k < 0 || k >= n then invalid_arg "Linexpr.var";
  let coef = Array.make n 0 in
  coef.(k) <- 1;
  { n; coef; const = 0 }

let dim e = e.n
let coeff e k = e.coef.(k)
let constant e = e.const

let check_dim a b =
  if a.n <> b.n then invalid_arg "Linexpr: dimension mismatch"

let add a b =
  check_dim a b;
  { n = a.n; coef = Array.map2 S.add a.coef b.coef; const = S.add a.const b.const }

let neg a = { a with coef = Array.map S.neg a.coef; const = S.neg a.const }
let sub a b = add a (neg b)

let scale k a =
  { a with coef = Array.map (S.mul k) a.coef; const = S.mul k a.const }

let add_const a c = { a with const = S.add a.const c }
let is_const a = Array.for_all (fun c -> c = 0) a.coef

(* Hash-consed callers mostly compare physically-shared expressions; the
   pointer check makes that O(1) before the structural fallback. *)
let equal a b =
  a == b || (a.n = b.n && a.const = b.const && a.coef = b.coef)

let feed d e =
  let module D = Numeric.Digest in
  let d = D.add_int d e.n in
  let d = Array.fold_left D.add_int d e.coef in
  D.add_int d e.const

let eval e xs =
  if Array.length xs <> e.n then invalid_arg "Linexpr.eval: dimension";
  let acc = ref e.const in
  for k = 0 to e.n - 1 do
    if e.coef.(k) <> 0 then acc := S.add !acc (S.mul e.coef.(k) xs.(k))
  done;
  !acc

let eval_partial e xs k =
  let acc = ref e.const in
  for j = 0 to e.n - 1 do
    if e.coef.(j) <> 0 then
      if j < k then acc := S.add !acc (S.mul e.coef.(j) xs.(j))
      else invalid_arg "Linexpr.eval_partial: free later variable"
  done;
  !acc

let content e = Array.fold_left S.gcd 0 e.coef
let vars e =
  let acc = ref [] in
  for k = e.n - 1 downto 0 do
    if e.coef.(k) <> 0 then acc := k :: !acc
  done;
  !acc

let uses e k = e.coef.(k) <> 0

let max_var e =
  let m = ref (-1) in
  for k = 0 to e.n - 1 do
    if e.coef.(k) <> 0 then m := k
  done;
  !m

let set_coeff e k v =
  let coef = Array.copy e.coef in
  coef.(k) <- v;
  { e with coef }

let subst e k r =
  check_dim e r;
  if r.coef.(k) <> 0 then invalid_arg "Linexpr.subst: replacement uses target";
  let c = e.coef.(k) in
  if c = 0 then e else add (set_coeff e k 0) (scale c r)

let assign e k v =
  let c = e.coef.(k) in
  if c = 0 then e else add_const (set_coeff e k 0) (S.mul c v)

let drop_var e k =
  if e.coef.(k) <> 0 then invalid_arg "Linexpr.drop_var: non-zero coefficient";
  {
    n = e.n - 1;
    coef = Array.init (e.n - 1) (fun j -> if j < k then e.coef.(j) else e.coef.(j + 1));
    const = e.const;
  }

let extend e n' =
  if n' < e.n then invalid_arg "Linexpr.extend: shrinking";
  { n = n'; coef = Array.init n' (fun j -> if j < e.n then e.coef.(j) else 0); const = e.const }

let remap e n' perm =
  if Array.length perm <> e.n then invalid_arg "Linexpr.remap: perm length";
  let coef = Array.make n' 0 in
  Array.iteri
    (fun k c ->
      if c <> 0 then begin
        let k' = perm.(k) in
        if k' < 0 || k' >= n' then invalid_arg "Linexpr.remap: bad target";
        coef.(k') <- S.add coef.(k') c
      end)
    e.coef;
  { n = n'; coef; const = e.const }

let pp names ppf e =
  let first = ref true in
  let term ppf c k =
    let name = if k < Array.length names then names.(k) else Printf.sprintf "x%d" k in
    if !first then begin
      first := false;
      if c = 1 then Format.fprintf ppf "%s" name
      else if c = -1 then Format.fprintf ppf "-%s" name
      else Format.fprintf ppf "%d*%s" c name
    end
    else if c > 0 then
      if c = 1 then Format.fprintf ppf " + %s" name
      else Format.fprintf ppf " + %d*%s" c name
    else if c = -1 then Format.fprintf ppf " - %s" name
    else Format.fprintf ppf " - %d*%s" (-c) name
  in
  Array.iteri (fun k c -> if c <> 0 then term ppf c k) e.coef;
  if !first then Format.fprintf ppf "%d" e.const
  else if e.const > 0 then Format.fprintf ppf " + %d" e.const
  else if e.const < 0 then Format.fprintf ppf " - %d" (-e.const)
