module L = Linexpr
module P = Poly
module D = Numeric.Digest

(* One counter per set operation: the pipeline report diffs these to show
   how much set algebra each strategy burned. *)
let c_union = Obs.Counter.make "iset.union"
let c_inter = Obs.Counter.make "iset.inter"
let c_diff = Obs.Counter.make "iset.diff"
let c_is_empty = Obs.Counter.make "iset.is_empty"
let c_subset = Obs.Counter.make "iset.subset"
let c_equal = Obs.Counter.make "iset.equal"
let c_simplify = Obs.Counter.make "iset.simplify"

type t = { iters : string array; params : string array; polys : Poly.t list }

let make ~iters ~params polys =
  let n = Array.length iters + Array.length params in
  List.iter
    (fun p -> if P.dim p <> n then invalid_arg "Iset.make: dimension mismatch")
    polys;
  { iters; params; polys = List.map P.intern polys }

let universe ~iters ~params =
  make ~iters ~params [ P.universe (Array.length iters + Array.length params) ]

let empty ~iters ~params = make ~iters ~params []
let names s = Array.append s.iters s.params
let dim s = Array.length s.iters + Array.length s.params
let n_iters s = Array.length s.iters
let polys s = s.polys

(* Hash-consed sets share their name arrays across derived values, so the
   physical checks settle the common case in O(1). *)
let names_equal a b = a == b || a = b

let same_space a b =
  a == b || (names_equal a.iters b.iters && names_equal a.params b.params)

let check_space a b =
  if not (same_space a b) then invalid_arg "Iset: space mismatch"

let add_poly s p =
  if P.dim p <> dim s then invalid_arg "Iset.add_poly: dimension mismatch";
  { s with polys = P.intern p :: s.polys }

(* Appending disjunct lists verbatim made repeated unions accumulate
   duplicate polyhedra; content digests make the dedup one table probe per
   disjunct, so s ∪ s = s up to order. *)
let dedup_polys polys =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun p ->
      let d = P.digest p in
      if Hashtbl.mem seen d then false
      else begin
        Hashtbl.add seen d ();
        true
      end)
    polys

let union a b =
  Obs.Counter.incr c_union;
  check_space a b;
  if a.polys == b.polys then a
  else { a with polys = dedup_polys (a.polys @ b.polys) }

let inter a b =
  Obs.Counter.incr c_inter;
  check_space a b;
  { a with polys = Dnf.inter a.polys b.polys }

let diff a b =
  Obs.Counter.incr c_diff;
  check_space a b;
  { a with polys = Dnf.diff a.polys b.polys }

let is_empty s =
  Obs.Counter.incr c_is_empty;
  Dnf.is_empty s.polys

let subset a b =
  Obs.Counter.incr c_subset;
  check_space a b;
  a == b || a.polys == b.polys || Dnf.subset a.polys b.polys

let equal a b =
  Obs.Counter.incr c_equal;
  check_space a b;
  a == b || a.polys == b.polys || Dnf.equal a.polys b.polys

let simplify ?aggressive s =
  Obs.Counter.incr c_simplify;
  { s with polys = Dnf.simplify ?aggressive s.polys }

let mem s xs = Dnf.mem s.polys xs

let mem_iter s ~params i =
  if Array.length params <> Array.length s.params then
    invalid_arg "Iset.mem_iter: params";
  mem s (Array.append i params)

let bind_params s values =
  let np = Array.length s.params in
  if Array.length values <> np then invalid_arg "Iset.bind_params";
  let ni = Array.length s.iters in
  let polys =
    List.map
      (fun p ->
        let p = ref p in
        for k = 0 to np - 1 do
          p := P.assign !p (ni + k) values.(k)
        done;
        (* Parameters are now unused; drop the trailing dimensions. *)
        for k = np - 1 downto 0 do
          p := P.drop_dim !p (ni + k)
        done;
        !p)
      s.polys
  in
  { iters = s.iters; params = [||]; polys }

let digest s =
  let feed_names d ns =
    Array.fold_left
      (fun d n -> D.add_char (D.add_string d n) '\x00')
      (D.add_int d (Array.length ns))
      ns
  in
  List.fold_left
    (fun d p -> D.add_digest d (P.digest p))
    (feed_names (feed_names D.seed s.iters) s.params)
    s.polys

let pp ppf s =
  let nm = names s in
  if s.polys = [] then Format.pp_print_string ppf "{ }"
  else
    Format.fprintf ppf "@[<v>%a@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,∪ ")
         (fun ppf p -> Format.fprintf ppf "{ %a }" (P.pp nm) p))
      s.polys
