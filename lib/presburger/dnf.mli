(** Operations on unions of polyhedra (disjunctive normal form) over a
    common variable space.  {!Iset} and {!Rel} wrap these with variable-name
    bookkeeping.

    The big operators ({!inter}, {!diff}, {!simplify}) are memoized in
    digest-keyed {!Hc} tables, and independent per-disjunct elimination work
    is spread over an injected worker pool (see {!set_runner}). *)

val set_runner : ((unit -> unit) array -> unit) option -> unit
(** Installs (or removes, with [None]) the parallel job runner used for
    independent disjunct elimination.  The runner must execute every job in
    the array before returning (a barrier) and may re-raise a job's
    exception; [Runtime.Workers.install_dnf_runner] wires a worker pool in.
    Jobs never submit nested runner calls (re-entry falls back to
    sequential), but the runner itself must tolerate concurrent calls from
    several domains. *)

val inter : Poly.t list -> Poly.t list -> Poly.t list
(** Pairwise conjunction. *)

val poly_diff : Poly.t -> Poly.t -> Poly.t list
(** [poly_diff a b] is [a \ b] as a disjoint union of polyhedra. *)

val diff : Poly.t list -> Poly.t list -> Poly.t list
(** Set difference of unions. *)

val is_empty : Poly.t list -> bool
val subset : Poly.t list -> Poly.t list -> bool
val equal : Poly.t list -> Poly.t list -> bool

val project_out : Poly.t list -> int list -> Poly.t list
(** Exact integer projection of every polyhedron. *)

val simplify : ?aggressive:bool -> Poly.t list -> Poly.t list
(** Drop empty disjuncts, normalize, and remove redundant constraints; with
    [~aggressive:true] also drop disjuncts subsumed by another disjunct. *)

val mem : Poly.t list -> int array -> bool
