(** Sharded, capacity-bounded node/memo tables keyed by the 128-bit
    {!Numeric.Digest} — the hash-consing and memoization substrate of the
    presburger layer.

    Digest equality is treated as definitive (128 bits of FNV-1a over the
    full syntactic content): a hit returns the stored value without a
    structural re-check.  Tables are LRU per shard, modeled on
    [Svc.Cache]; eviction loses only sharing/memoization, never
    correctness.  Each table registers
    [presburger.memo.<name>.{hits,misses,evictions}] counters in
    {!Obs.Metrics}. *)

type 'v memo

val memo : ?shards:int -> name:string -> capacity:int -> unit -> 'v memo
(** Creates a table and registers it (for {!clear_all}/{!totals}) and its
    counters.  Default 8 shards; capacity is split across shards. *)

val find : 'v memo -> Numeric.Digest.t -> 'v option
val add : 'v memo -> Numeric.Digest.t -> 'v -> unit

val get : 'v memo -> Numeric.Digest.t -> (unit -> 'v) -> 'v
(** [get t k f] returns the cached value for [k], computing and storing
    [f ()] on a miss.  The compute runs outside the shard lock (concurrent
    misses duplicate work, never corrupt the table); exceptions from [f]
    propagate and cache nothing.  When memoization is disabled
    ({!set_enabled}[ false]) this is just [f ()]. *)

val length : 'v memo -> int

val set_enabled : bool -> unit
(** Process-wide switch, on by default.  Tests flip it off to compute
    unmemoized reference results. *)

val enabled : unit -> bool

val clear_all : unit -> unit
(** Empties every registered table (cold-analyze benchmarking).  Counters
    are cumulative and are not reset. *)

type totals = { hits : int; misses : int; evictions : int }

val totals : unit -> totals
(** Sums the hit/miss/eviction counters over every registered table. *)
