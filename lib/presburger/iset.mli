(** Named integer sets: unions of polyhedra over iteration variables plus
    trailing symbolic parameters (e.g. loop bounds [N1], [N2]).

    All binary operations require both sides to live in the same space (same
    iteration and parameter names, in order). *)

type t = private {
  iters : string array;
  params : string array;
  polys : Poly.t list;
}

val make :
  iters:string array -> params:string array -> Poly.t list -> t
val universe : iters:string array -> params:string array -> t
val empty : iters:string array -> params:string array -> t

val names : t -> string array
(** [names s] is [iters ⧺ params] — the full variable space. *)

val dim : t -> int
val n_iters : t -> int
val polys : t -> Poly.t list
val same_space : t -> t -> bool
val add_poly : t -> Poly.t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val is_empty : t -> bool
val subset : t -> t -> bool
val equal : t -> t -> bool
val simplify : ?aggressive:bool -> t -> t

val digest : t -> Numeric.Digest.t
(** Content digest of the space names and (order-sensitive) disjunct
    digests; used as a memo key by {!Rel} and callers. *)

val mem : t -> int array -> bool
(** [mem s xs] with [xs] covering iteration variables and parameters. *)

val mem_iter : t -> params:int array -> int array -> bool
(** [mem_iter s ~params i] tests an iteration point under bound parameters. *)

val bind_params : t -> int array -> t
(** [bind_params s values] substitutes every parameter and drops it from the
    space. *)

val pp : Format.formatter -> t -> unit
