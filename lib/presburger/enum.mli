(** Exact enumeration of the integer points of bounded unions of polyhedra.

    Enumeration proceeds dimension by dimension through exact projections,
    so no search branch is ever dead; the result is lexicographically sorted
    and duplicate-free even when the union's disjuncts overlap. *)

exception Unbounded of string
(** Raised when a set is unbounded in some dimension (e.g. parameters were
    left symbolic). *)

val points_polys : int -> Poly.t list -> int array list
(** [points_polys n polys] enumerates the union of [n]-dimensional
    polyhedra. *)

val points : Iset.t -> int array list
(** [points s] enumerates a parameter-free set (bind parameters first with
    {!Iset.bind_params}). *)

val cardinal : Iset.t -> int
(** Number of integer points of a parameter-free set — counted during the
    same projection-based recursion as {!points}, without materializing
    the point lists. *)

val first_var_values : Poly.t -> int list
(** [first_var_values p] is the sorted list of values variable 0 takes in
    [p] (exact projection onto the first dimension). *)
