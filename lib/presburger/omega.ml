module S = Numeric.Safeint
module L = Linexpr
module C = Constr
module P = Poly

exception Blowup of string

let max_branch_modulus = 512

(* Observability: how much set-algebra work each public entry burns.  The
   counters are process-wide atomics (always on, one fetch-and-add per
   public call); budget accounting makes Set_blowup near-misses visible
   before they become failures. *)
let c_eliminate_calls = Obs.Counter.make "omega.eliminate_calls"
let c_project_calls = Obs.Counter.make "omega.project_out_calls"
let c_is_empty_calls = Obs.Counter.make "omega.is_empty_calls"
let c_blowups = Obs.Counter.make "omega.blowups"
let c_budget_spent = Obs.Counter.make "omega.budget_spent"
let c_near_miss = Obs.Counter.make "omega.budget_near_miss"
let h_budget_used = Obs.Histogram.make "omega.budget_used"

(* Runs [f] with a fresh elimination budget and accounts for the share it
   consumed.  A call that used ≥ 80% of its budget without blowing up is a
   near-miss — the workload is close to the Set_blowup cliff. *)
let with_budget initial f =
  let budget = ref initial in
  let account ~blown =
    let used = initial - !budget in
    Obs.Counter.add c_budget_spent used;
    Obs.Histogram.observe h_budget_used used;
    if blown then Obs.Counter.incr c_blowups
    else if used * 5 >= initial * 4 then Obs.Counter.incr c_near_miss
  in
  match f budget with
  | v ->
      account ~blown:false;
      v
  | exception e ->
      account ~blown:(match e with Blowup _ -> true | _ -> false);
      raise e

let drop_dim = P.drop_dim

(* Rewrite [e] under the change of variable x_k := m·q + r, where q reuses
   index k. *)
let subst_residue e k m r =
  let c = L.coeff e k in
  if c = 0 then e
  else L.add_const (L.set_coeff e k (S.mul m c)) (S.mul c r)

(* Substitute x_k using the equality pivot a·x_k = rhs (a > 0, rhs has no
   x_k) into one constraint. *)
let pivot_constr k a rhs c =
  let e = C.expr c in
  let b = L.coeff e k in
  if b = 0 then c
  else
    let rest = L.set_coeff e k 0 in
    let e' = L.add (L.scale b rhs) (L.scale a rest) in
    match c with
    | C.Eq _ -> C.Eq e'
    | C.Ge _ -> C.Ge e'
    | C.Div (m, _) -> C.Div (S.mul a m, e')

(* Eliminate x_k from [p] using an equality [f = 0] with a non-zero
   coefficient of x_k ([f] itself need not belong to [p]).  Exact; yields a
   single polyhedron of dimension n-1. *)
let pivot_eliminate p k f =
  let f = if L.coeff f k < 0 then L.neg f else f in
  let a = L.coeff f k in
  assert (a > 0);
  let rhs = L.neg (L.set_coeff f k 0) in
  let cons =
    List.filter_map
      (fun c ->
        if C.equal c (C.Eq f) then None else Some (pivot_constr k a rhs c))
      p.P.cons
  in
  let cons = if a > 1 then C.Div (a, rhs) :: cons else cons in
  drop_dim (P.with_cons p cons) k

(* Fourier–Motzkin combination of a lower bound a·x_k ≥ -L (from f_l ≥ 0,
   coeff a > 0) and an upper bound b·x_k ≤ U (from f_u ≥ 0, coeff -b < 0):
   real shadow a·U + b·L ≥ 0, dark shadow subtracts (a-1)(b-1). *)
let fm_combine k ~dark (a, f_l) (b, f_u) =
  let lrest = L.set_coeff f_l k 0 and urest = L.set_coeff f_u k 0 in
  let e = L.add (L.scale b lrest) (L.scale a urest) in
  if dark && a > 1 && b > 1 then L.add_const e (-(S.mul (a - 1) (b - 1)))
  else e

let rec eliminate_b budget p k =
  decr budget;
  if !budget <= 0 then raise (Blowup "elimination budget exhausted");
  match P.normalize p with
  | None -> []
  | Some p ->
      if k < 0 || k >= p.P.n then invalid_arg "Omega.eliminate: bad variable";
      if not (P.uses_var p k) then [ drop_dim p k ]
      else begin
        match
          List.find_opt
            (function C.Div (_, e) -> L.uses e k | _ -> false)
            p.P.cons
        with
        | Some (C.Div (m, _)) ->
            (* Branch on the residue class of x_k modulo m; each branch
               reuses index k for the quotient variable. *)
            if m > max_branch_modulus then
              raise (Blowup (Printf.sprintf "residue branching modulus %d" m));
            List.concat_map
              (fun r ->
                let p_r =
                  P.map_exprs (fun e -> subst_residue e k m r) p
                in
                eliminate_b budget p_r k)
              (List.init m Fun.id)
        | Some _ -> assert false
        | None -> (
            (* Prefer an equality pivot with the smallest coefficient. *)
            let eqs =
              List.filter_map
                (function
                  | C.Eq e when L.uses e k -> Some (S.abs (L.coeff e k), e)
                  | _ -> None)
                p.P.cons
            in
            match List.sort compare eqs with
            | (_, f) :: _ -> [ pivot_eliminate p k f ]
            | [] ->
                let lowers, uppers, others =
                  List.fold_left
                    (fun (lo, up, ot) c ->
                      match c with
                      | C.Ge e when L.coeff e k > 0 ->
                          ((L.coeff e k, e) :: lo, up, ot)
                      | C.Ge e when L.coeff e k < 0 ->
                          (lo, (-L.coeff e k, e) :: up, ot)
                      | c -> (lo, up, c :: ot))
                    ([], [], []) p.P.cons
                in
                if lowers = [] || uppers = [] then
                  (* Unbounded in one direction: the projection drops every
                     constraint involving x_k. *)
                  [ drop_dim (P.with_cons p (List.rev others)) k ]
                else
                  let exact =
                    List.for_all
                      (fun (a, _) ->
                        a = 1 || List.for_all (fun (b, _) -> b = 1) uppers)
                      lowers
                  in
                  let shadow ~dark =
                    let combos =
                      List.concat_map
                        (fun lo ->
                          List.map (fun up -> C.Ge (fm_combine k ~dark lo up)) uppers)
                        lowers
                    in
                    drop_dim (P.with_cons p (combos @ List.rev others)) k
                  in
                  if exact then [ shadow ~dark:false ]
                  else
                    let cmax =
                      List.fold_left (fun m (b, _) -> max m b) 1 uppers
                    in
                    let splinters =
                      List.concat_map
                        (fun (a, f_l) ->
                          let rmax =
                            S.fdiv (S.sub (S.mul cmax a) (S.add cmax a)) cmax
                          in
                          List.init (max 0 (rmax + 1)) (fun i ->
                              pivot_eliminate p k (L.add_const f_l (-i))))
                        lowers
                    in
                    shadow ~dark:true :: splinters)
      end

(* Public entries are memoized on the polyhedron's content digest
   (Blowup propagates without caching, so a failed computation is retried
   rather than remembered); result polyhedra are interned for maximal
   sharing across repeated sub-relations. *)
let memo_eliminate : P.t list Hc.memo =
  Hc.memo ~name:"omega.eliminate" ~capacity:16384 ()

let memo_project : P.t list Hc.memo =
  Hc.memo ~name:"omega.project_out" ~capacity:16384 ()

let memo_is_empty : bool Hc.memo =
  Hc.memo ~name:"omega.is_empty" ~capacity:65536 ()

let eliminate p k =
  Obs.Counter.incr c_eliminate_calls;
  Hc.get memo_eliminate (Numeric.Digest.add_int (P.digest p) k) @@ fun () ->
  List.map P.intern
    (with_budget 100_000 (fun budget -> eliminate_b budget p k))

let project_out p ks =
  Obs.Counter.incr c_project_calls;
  let ks = List.sort_uniq compare ks in
  let key = List.fold_left Numeric.Digest.add_int (P.digest p) ks in
  Hc.get memo_project key @@ fun () ->
  List.map P.intern
    ( with_budget 200_000 @@ fun budget ->
      List.fold_left
        (fun polys k -> List.concat_map (fun p -> eliminate_b budget p k) polys)
        [ p ]
        (List.rev ks) )

let is_empty p =
  Obs.Counter.incr c_is_empty_calls;
  Hc.get memo_is_empty (P.digest p) @@ fun () ->
  with_budget 500_000 @@ fun budget ->
  let rec go p =
    decr budget;
    if !budget <= 0 then raise (Blowup "emptiness budget exhausted");
    match P.normalize p with
    | None -> true
    | Some p ->
        if p.P.cons = [] then false
        else begin
          (* Pick the cheapest variable to eliminate. *)
          let n = p.P.n in
          let best = ref None in
          for k = 0 to n - 1 do
            if P.uses_var p k then begin
              let in_div =
                List.exists
                  (function C.Div (_, e) -> L.uses e k | _ -> false)
                  p.P.cons
              in
              let eq_cost =
                List.filter_map
                  (function
                    | C.Eq e when L.uses e k -> Some (S.abs (L.coeff e k))
                    | _ -> None)
                  p.P.cons
                |> function
                | [] -> None
                | cs -> Some (List.fold_left min max_int cs)
              in
              let score =
                match eq_cost with
                | Some 1 -> 0
                | Some c -> 10 + c
                | None ->
                    if in_div then 100_000
                    else
                      let lo = ref 0 and up = ref 0 and unit_only = ref true in
                      List.iter
                        (function
                          | C.Ge e when L.coeff e k > 0 ->
                              incr lo;
                              if L.coeff e k > 1 then unit_only := false
                          | C.Ge e when L.coeff e k < 0 ->
                              incr up;
                              if L.coeff e k < -1 then unit_only := false
                          | _ -> ())
                        p.P.cons;
                      (!lo * !up) + (if !unit_only then 100 else 1000)
              in
              match !best with
              | Some (s, _) when s <= score -> ()
              | _ -> best := Some (score, k)
            end
          done;
          match !best with
          | None ->
              (* Constraints exist but use no variable: normalize would have
                 resolved them, so the system is satisfiable. *)
              false
          | Some (_, k) -> List.for_all go (eliminate_b budget p k)
        end
  in
  go p
