module L = Linexpr
module C = Constr
module D = Numeric.Digest

(* [dg] caches the content digest of (n, cons) — order-sensitive, so
   digest equality means syntactic identity and interning never reorders
   constraints.  The field is mutable but write-once with an immutable
   payload: a racy double-compute from two domains stores the same value,
   and the pointer store is atomic, so lazy initialization is benign. *)
type t = { n : int; cons : C.t list; mutable dg : D.t option }

let mk n cons = { n; cons; dg = None }
let universe n = mk n []

let make n cons =
  List.iter
    (fun c -> if C.dim c <> n then invalid_arg "Poly.make: dimension mismatch")
    cons;
  mk n cons

let with_cons p cons = mk p.n cons

let digest p =
  match p.dg with
  | Some d -> d
  | None ->
      let d = List.fold_left C.feed (D.add_int D.seed p.n) p.cons in
      p.dg <- Some d;
      d

(* Hash-consing: one canonical representative per digest, process-wide.
   Eviction only loses sharing; a re-interned equal value becomes the new
   representative. *)
let intern_tbl : t Hc.memo = Hc.memo ~name:"intern" ~capacity:16384 ()
let intern p = Hc.get intern_tbl (digest p) (fun () -> p)

let add_constr p c =
  if C.dim c <> p.n then invalid_arg "Poly.add_constr: dimension mismatch";
  mk p.n (c :: p.cons)

let add_constrs p cs = List.fold_left add_constr p cs

let inter a b =
  if a.n <> b.n then invalid_arg "Poly.inter: dimension mismatch";
  mk a.n (a.cons @ b.cons)

exception Empty

let normalize p =
  try
    let kept =
      List.filter_map
        (fun c ->
          match C.normalize c with
          | C.Keep c -> Some c
          | C.Tautology -> None
          | C.Contradiction -> raise Empty)
        p.cons
    in
    (* Pair e ≥ 0 with -e ≥ 0 into the single equality e = 0. *)
    let kept = List.sort_uniq C.compare kept in
    let ges = List.filter_map (function C.Ge e -> Some e | _ -> None) kept in
    let kept =
      List.concat_map
        (fun c ->
          match c with
          | C.Ge e ->
              let neg = L.neg e in
              if List.exists (fun e' -> L.equal e' neg) ges then
                (* Both e ≥ 0 and -e ≥ 0 are present; emit the equality once,
                   on the canonically smaller of the two expressions. *)
                if Stdlib.compare e neg < 0 then [ C.Eq e ] else []
              else [ c ]
          | (C.Eq _ | C.Div _) as c -> [ c ])
        kept
    in
    Some (mk p.n kept)
  with Empty -> None

let mem p xs = List.for_all (fun c -> C.holds c xs) p.cons
let dim p = p.n
let constraints p = p.cons
let uses_var p k = List.exists (fun c -> C.uses c k) p.cons
let map_exprs f p = mk p.n (List.map (C.map_expr f) p.cons)
let assign p k v = map_exprs (fun e -> L.assign e k v) p
let drop_dim p k =
  mk (p.n - 1) (List.map (C.map_expr (fun e -> L.drop_var e k)) p.cons)

let extend p n' = mk n' (List.map (C.map_expr (fun e -> L.extend e n')) p.cons)

let remap p n' perm =
  mk n' (List.map (C.map_expr (fun e -> L.remap e n' perm)) p.cons)

let equal_syntactic a b =
  a == b
  || (a.n = b.n
     &&
     (* Shared digests decide in O(1) when both are already cached;
        otherwise fall back to the order-insensitive comparison. *)
     match (a.dg, b.dg) with
     | Some da, Some db when D.equal da db -> true
     | _ ->
         List.sort C.compare a.cons = List.sort C.compare b.cons)

let pp names ppf p =
  if p.cons = [] then Format.pp_print_string ppf "true"
  else
    Format.fprintf ppf "@[<hov>%a@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ && ")
         (C.pp names))
      p.cons
