(** Affine integer expressions [c₀ + Σ cᵢ·xᵢ] over a fixed number of
    variables, the atoms of all Presburger constraints in this library. *)

type t = { n : int; coef : int array; const : int }
(** [coef] has length [n]; the expression denotes
    [const + Σ coef.(k)·x_k]. *)

val make : int array -> int -> t
val zero : int -> t
val const : int -> int -> t
(** [const n c] is the constant [c] over [n] variables. *)

val var : int -> int -> t
(** [var n k] is the single variable [x_k] over [n] variables. *)

val dim : t -> int
val coeff : t -> int -> int
val constant : t -> int
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t
val add_const : t -> int -> t
val is_const : t -> bool

val equal : t -> t -> bool
(** Physical equality is checked first; hash-consed callers compare shared
    expressions in O(1). *)

val feed : Numeric.Digest.t -> t -> Numeric.Digest.t
(** Feeds the full syntactic content ([n], coefficients, constant) into a
    running content digest. *)

val eval : t -> int array -> int
(** [eval e xs] evaluates [e] at the point [xs] (length [n]). *)

val eval_partial : t -> int array -> int -> int
(** [eval_partial e xs k] evaluates the first [k] variables of [e] at
    [xs.(0..k-1)], treating the coefficients of later variables as an error;
    raises [Invalid_argument] if any variable ≥ [k] has a non-zero
    coefficient. *)

val content : t -> int
(** [content e] is the gcd of the variable coefficients (0 when all are 0). *)

val vars : t -> int list
(** [vars e] lists the indices with non-zero coefficient, increasing. *)

val uses : t -> int -> bool
val max_var : t -> int
(** [max_var e] is the largest index with a non-zero coefficient, or [-1]. *)

val set_coeff : t -> int -> int -> t

val subst : t -> int -> t -> t
(** [subst e k r] replaces [x_k] by the expression [r] in [e]; requires
    [coeff r k = 0]. *)

val assign : t -> int -> int -> t
(** [assign e k v] replaces [x_k] by the constant [v]. *)

val drop_var : t -> int -> t
(** [drop_var e k] removes dimension [k] (which must have zero coefficient),
    renumbering the higher variables down by one. *)

val extend : t -> int -> t
(** [extend e n'] re-reads [e] in a space of [n' ≥ n] variables (new
    trailing variables have zero coefficients). *)

val remap : t -> int -> int array -> t
(** [remap e n' perm] re-reads [e] in a space of [n'] variables where old
    variable [k] becomes variable [perm.(k)]. *)

val pp : string array -> Format.formatter -> t -> unit
(** [pp names ppf e] prints [e] using [names] for the variables. *)
