(** Convex integer polyhedra: conjunctions of {!Constr.t} over [n]
    variables, possibly with divisibility (stride) constraints.

    A value of type [t] is just a conjunction; emptiness over the integers is
    decided exactly by {!Omega.is_empty}.  Every polyhedron carries a
    lazily-computed 128-bit content digest ({!digest}) used by the
    hash-cons/memo tables in {!Hc}; the record is private so construction
    sites cannot copy a stale digest. *)

type t = private {
  n : int;
  cons : Constr.t list;
  mutable dg : Numeric.Digest.t option;
}

val universe : int -> t
val make : int -> Constr.t list -> t

val with_cons : t -> Constr.t list -> t
(** [with_cons p cons] is a polyhedron of the same dimension with a new
    constraint list (the digest cache is reset). *)

val add_constr : t -> Constr.t -> t
val add_constrs : t -> Constr.t list -> t
val inter : t -> t -> t
(** [inter a b] conjoins two polyhedra over the same space. *)

val normalize : t -> t option
(** [normalize p] normalizes every constraint, deduplicates, pairs opposite
    inequalities into equalities, and returns [None] when a ground
    contradiction is found. *)

val mem : t -> int array -> bool
val dim : t -> int
val constraints : t -> Constr.t list
val uses_var : t -> int -> bool

val assign : t -> int -> int -> t
(** [assign p k v] fixes variable [k] to the constant [v] (the dimension
    remains; the variable becomes unconstrained-but-unused afterwards only if
    it occurred nowhere else). *)

val drop_dim : t -> int -> t
(** [drop_dim p k] removes dimension [k], which no constraint may use,
    renumbering higher variables down. *)

val extend : t -> int -> t
val remap : t -> int -> int array -> t
val map_exprs : (Linexpr.t -> Linexpr.t) -> t -> t

val digest : t -> Numeric.Digest.t
(** Content digest of [(n, cons)] in constraint order; computed once and
    cached on the value. *)

val intern : t -> t
(** [intern p] returns the canonical representative for [p]'s digest from
    the process-wide hash-cons table (registering [p] if absent), so
    structurally identical polyhedra become physically shared. *)

val equal_syntactic : t -> t -> bool
(** Order-insensitive constraint-multiset equality, with O(1) physical and
    cached-digest fast paths. *)

val pp : string array -> Format.formatter -> t -> unit
