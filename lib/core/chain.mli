(** Monotonic recurrence chains: the decomposition of the intermediate set
    [P2] into disjoint lexicographically increasing chains (Lemma 1), each
    executed sequentially by a WHILE loop with irregular stride.

    Chains are materialized for concrete parameter values; the symbolic
    artifacts ([W], the WHILE condition [Φ ∩ dom Rd]) stay in
    {!Threeset.t} / the code generator.

    Storage is flat: every point of every chain lives in one packed
    [int array] (chain-major, point-major), with an offset table marking
    chain boundaries — one allocation for the whole decomposition instead
    of one list cell + one boxed vector per point. *)

type t = {
  dim : int;  (** dimension of every point *)
  data : int array;
      (** packed points: chain [k] occupies points
          [offsets.(k) .. offsets.(k+1) - 1], each point [dim] cells *)
  offsets : int array;
      (** length [n_chains + 1]; [offsets.(0) = 0], last entry = total
          points *)
  longest : int;  (** length of the longest chain (0 when P2 is empty) *)
}

val n_chains : t -> int
val chain_length : t -> int -> int
val total_points : t -> int

val get : t -> int -> int -> Linalg.Ivec.t
(** [get t k i] is a fresh copy of point [i] of chain [k] (points are in
    lexicographic execution order within the chain). *)

val iter_chain : t -> int -> (Linalg.Ivec.t -> unit) -> unit
(** Iterates chain [k] in execution order; fresh copies. *)

val lengths : t -> int array
(** Per-chain point counts, indexed by chain id — the measured chain
    lengths the scheduler orders P2 work by (Theorem 1 bounds their
    maximum by [⌈log_a L⌉ + 1]). *)

val order_longest_first : t -> int array
(** A permutation of chain ids sorted by decreasing length (ties broken
    by ascending id, so the order is deterministic).  Longest-first is the
    LPT submission order the executor wants: the chain that bounds the
    barrier goes first. *)

val blit_point_to : t -> int -> int -> int array -> int -> unit
(** [blit_point_to t k i dst pos] copies point [i] of chain [k] into
    [dst] at [pos] without allocating (the flat-packing counterpart of
    {!get}).  Raises [Invalid_argument] out of range. *)

val to_lists : t -> Linalg.Ivec.t list list
(** Unpacked view (one list per chain) — for tests, visualization and
    event evidence; allocates. *)

val of_lists : dim:int -> Linalg.Ivec.t list list -> t
(** Packs a list-of-lists chain decomposition. *)

(** Append-only construction: add the points of a chain in order, then
    close it with {!Builder.end_chain}. *)
module Builder : sig
  type chains := t
  type t

  val create : dim:int -> t
  val add_point : t -> Linalg.Ivec.t -> unit
  val end_chain : t -> unit
  (** Closes the current chain (no-op point set is allowed but produces an
      empty chain — callers normally add at least one point first). *)

  val finish : t -> chains
end

val decompose :
  three:Threeset.t ->
  rec_:Recurrence.t ->
  phi:Presburger.Iset.t ->
  params:int array ->
  t
(** [decompose ~three ~rec_ ~phi ~params] walks each start point of [W]
    forward through {!Recurrence.successor} while it stays intermediate.
    Raises {!Diag.Error} ([Lemma1_violation]/[Chain_cover]/
    [Outside_partition]) when the walk violates Lemma 1 (bifurcation) or
    fails to cover [P2] — callers fall back to dataflow partitioning. *)
