(** Monotonic recurrence chains: the decomposition of the intermediate set
    [P2] into disjoint lexicographically increasing chains (Lemma 1), each
    executed sequentially by a WHILE loop with irregular stride.

    Chains are materialized for concrete parameter values; the symbolic
    artifacts ([W], the WHILE condition [Φ ∩ dom Rd]) stay in
    {!Threeset.t} / the code generator. *)

type t = {
  chains : Linalg.Ivec.t list list;
      (** one list per chain, in lexicographic execution order; every [P2]
          point appears in exactly one chain *)
  longest : int;  (** length of the longest chain (0 when P2 is empty) *)
}

val decompose :
  three:Threeset.t ->
  rec_:Recurrence.t ->
  phi:Presburger.Iset.t ->
  params:int array ->
  t
(** [decompose ~three ~rec_ ~phi ~params] walks each start point of [W]
    forward through {!Recurrence.successor} while it stays intermediate.
    Raises {!Diag.Error} ([Lemma1_violation]/[Chain_cover]/
    [Outside_partition]) when the walk violates Lemma 1 (bifurcation) or
    fails to cover [P2] — callers fall back to dataflow partitioning. *)

val total_points : t -> int
