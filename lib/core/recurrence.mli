(** The affine recurrence maps of §3.2.  For the single coupled pair
    [X(I·A + a)] / [X(I·B + b)] with non-singular [A], [B]:

    - as the {e write} side of the equation, iteration [x] is linked to the
      read-side iteration [x·(A·B⁻¹) + (a−b)·B⁻¹];
    - as the {e read} side, to [x·(B·A⁻¹) + (b−a)·A⁻¹].

    Both maps are rational; a link only exists when the image is integral
    (and inside [Φ]).  The lexicographically larger integral in-bounds
    neighbour of an intermediate iteration is its unique successor
    (Lemma 1). *)

type t = {
  m : int;
  t_wr : Linalg.Qmat.t;  (** A·B⁻¹ *)
  u_wr : Numeric.Rat.t array;  (** (a−b)·B⁻¹ *)
  t_rw : Linalg.Qmat.t;  (** B·A⁻¹ *)
  u_rw : Numeric.Rat.t array;  (** (b−a)·A⁻¹ *)
  det_wr : Numeric.Rat.t;  (** det(A)/det(B) *)
}

val of_pair :
  Depend.Depeq.t -> params:(string -> int) -> t option
(** [of_pair pair ~params] builds the maps, evaluating parametric offsets
    with [params]; [None] when either matrix is singular. *)

val neighbor_as_write : t -> Linalg.Ivec.t -> Linalg.Ivec.t option
(** Integral image under [x ↦ x·T_wr + u_wr], if any. *)

val neighbor_as_read : t -> Linalg.Ivec.t -> Linalg.Ivec.t option

val neighbors : t -> Linalg.Ivec.t -> Linalg.Ivec.t list
(** The (at most two) distinct integral neighbours, self-links excluded. *)

val successor :
  t -> in_phi:(Linalg.Ivec.t -> bool) -> Linalg.Ivec.t -> Linalg.Ivec.t option
(** The unique lexicographically-greater integral in-bounds neighbour;
    raises {!Diag.Error} ([Lemma1_violation]) if two distinct candidates
    exist — the caller must fall back to dataflow partitioning. *)

val predecessor :
  t -> in_phi:(Linalg.Ivec.t -> bool) -> Linalg.Ivec.t -> Linalg.Ivec.t option

val growth : t -> float
(** [a = max(|det T|, |det T⁻¹|)] of Theorem 1. *)
