(** Algorithm 1 — the recurrence partitioning scheme.

    Strategy selection, per the paper:
    - a single pair of coupled references with full-rank coefficient
      matrices → three-set partitioning + disjoint monotonic chains in [P2]
      (works with symbolic loop bounds);
    - otherwise, compile-time-known loop bounds → successive dataflow
      partitioning;
    - otherwise → the PDM uniformization of [27] (see
      {!Baselines.Pdm} in the baselines library). *)

type rec_plan = {
  simple : Depend.Solve.simple;
  pair : Depend.Depeq.t;
  three : Threeset.t;
}

type concrete_rec = {
  p1_pts : Points.t;  (** packed, in enumeration/scan order *)
  chains : Chain.t;
  p3_pts : Points.t;  (** packed, in enumeration/scan order *)
  growth : float;
  theorem_bound : int option;
}

type plan =
  | Rec_chains of rec_plan
      (** chains branch (single full-rank coupled pair) *)
  | Dataflow_const
      (** dataflow branch: constant bounds, partition via the exact
          instance graph ({!Dataflow.peel_concrete}) *)
  | Pdm_fallback of string
      (** neither hypothesis holds; the reason is given *)

val choose : Loopir.Ast.program -> plan
(** Selects the Algorithm 1 branch for a program. *)

val materialize_rec : rec_plan -> params:int array -> concrete_rec
(** Instantiates the symbolic three-set partition at concrete parameters:
    enumerates [P1]/[P3], decomposes [P2] into chains, and evaluates the
    Theorem 1 bound.  Raises {!Diag.Error} ([Param_arity],
    [Singular_recurrence], [Lemma1_violation], [Chain_cover], …) when the
    Lemma 1 hypotheses fail for this instance. *)

val materialize_rec_scan : rec_plan -> params:int array -> concrete_rec
(** Like {!materialize_rec} but classifying a direct scan of the iteration
    space against the symbolic sets (constraint evaluation only, no
    projection) — linear in [|Φ|], for paper-scale instances.  Raises
    {!Diag.Error} like {!materialize_rec}. *)

val materialize :
  ?engine:[ `Enum | `Scan ] ->
  rec_plan ->
  params:int array ->
  (concrete_rec, Diag.error) result
(** Result-based materialization — the pipeline entry point.  [`Scan]
    (default) is {!materialize_rec_scan}, [`Enum] is {!materialize_rec};
    {!Diag.Error} and symbolic blowups are threaded as [Error]. *)

val rec_points_in_order : concrete_rec -> Linalg.Ivec.t list
(** Every iteration exactly once, in a legal execution order
    (P1, then chains interleaved, then P3) — used by invariant tests. *)
