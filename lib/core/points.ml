type t = { dim : int; n : int; data : int array }

let dim t = t.dim
let length t = t.n

let get t i =
  if i < 0 || i >= t.n then invalid_arg "Points.get: index out of range";
  Array.sub t.data (i * t.dim) t.dim

let blit_to t i dst pos =
  if i < 0 || i >= t.n then invalid_arg "Points.blit_to: index out of range";
  if pos < 0 || pos + t.dim > Array.length dst then
    invalid_arg "Points.blit_to: destination range out of bounds";
  Array.blit t.data (i * t.dim) dst pos t.dim

let iter f t =
  for i = 0 to t.n - 1 do
    f (Array.sub t.data (i * t.dim) t.dim)
  done

let to_list t = List.init t.n (get t)
let empty ~dim = { dim; n = 0; data = [||] }

module Builder = struct
  type t = { bdim : int; mutable data : int array; mutable n : int }

  let create ~dim =
    if dim < 0 then invalid_arg "Points.Builder.create: negative dimension";
    { bdim = dim; data = Array.make (max 1 (16 * dim)) 0; n = 0 }

  let length b = b.n

  let add b (x : Linalg.Ivec.t) =
    if Array.length x <> b.bdim then
      invalid_arg "Points.Builder.add: dimension mismatch";
    let need = (b.n + 1) * b.bdim in
    if need > Array.length b.data then begin
      let data = Array.make (max need (2 * Array.length b.data)) 0 in
      Array.blit b.data 0 data 0 (b.n * b.bdim);
      b.data <- data
    end;
    Array.blit x 0 b.data (b.n * b.bdim) b.bdim;
    b.n <- b.n + 1

  let finish b =
    { dim = b.bdim; n = b.n; data = Array.sub b.data 0 (b.n * b.bdim) }
end

let of_list ~dim pts =
  let b = Builder.create ~dim in
  List.iter (Builder.add b) pts;
  Builder.finish b
