module Iset = Presburger.Iset
module Enum = Presburger.Enum
module Ivec = Linalg.Ivec

type t = { chains : Linalg.Ivec.t list list; longest : int }

module VSet = Set.Make (struct
  type t = int array

  let compare = Ivec.compare_lex
end)

let decompose ~three ~rec_ ~phi ~params =
  let in_phi x = Iset.mem phi (Array.append x params) in
  let in_p2 x = Iset.mem three.Threeset.p2 (Array.append x params) in
  let p2_points =
    Enum.points (Iset.bind_params three.Threeset.p2 params)
  in
  let w_points = Enum.points (Iset.bind_params three.Threeset.w params) in
  let seen = ref VSet.empty in
  let chains =
    List.map
      (fun start ->
        if not (in_p2 start) then
          Diag.fail
            (Diag.Outside_partition
               ("chain start " ^ Ivec.to_string start ^ " not in P2"));
        let rec walk x acc =
          if VSet.mem x !seen then
            Diag.fail (Diag.Lemma1_violation "chains intersect");
          seen := VSet.add x !seen;
          match Recurrence.successor rec_ ~in_phi x with
          | Some y when in_p2 y -> walk y (x :: acc)
          | Some _ | None -> List.rev (x :: acc)
        in
        walk start [])
      w_points
  in
  let covered = VSet.cardinal !seen in
  if covered <> List.length p2_points then
    Diag.fail
      (Diag.Chain_cover { covered; expected = List.length p2_points });
  let longest = List.fold_left (fun m c -> max m (List.length c)) 0 chains in
  { chains; longest }

let total_points t =
  List.fold_left (fun acc c -> acc + List.length c) 0 t.chains
