module Iset = Presburger.Iset
module Enum = Presburger.Enum
module Ivec = Linalg.Ivec

type t = { dim : int; data : int array; offsets : int array; longest : int }

let n_chains t = Array.length t.offsets - 1
let chain_length t k = t.offsets.(k + 1) - t.offsets.(k)
let total_points t = t.offsets.(Array.length t.offsets - 1)

let get t k i =
  if k < 0 || k >= n_chains t then invalid_arg "Chain.get: chain out of range";
  if i < 0 || i >= chain_length t k then
    invalid_arg "Chain.get: point out of range";
  Array.sub t.data ((t.offsets.(k) + i) * t.dim) t.dim

let iter_chain t k f =
  for i = t.offsets.(k) to t.offsets.(k + 1) - 1 do
    f (Array.sub t.data (i * t.dim) t.dim)
  done

let lengths t =
  Array.init (n_chains t) (fun k -> t.offsets.(k + 1) - t.offsets.(k))

let order_longest_first t =
  let order = Array.init (n_chains t) Fun.id in
  (* Stable on ties (ascending chain id) so the schedule order is
     deterministic whatever the decomposition produced. *)
  Array.sort
    (fun a b ->
      let c = compare (chain_length t b) (chain_length t a) in
      if c <> 0 then c else compare a b)
    order;
  order

let blit_point_to t k i dst pos =
  if k < 0 || k >= n_chains t then
    invalid_arg "Chain.blit_point_to: chain out of range";
  if i < 0 || i >= chain_length t k then
    invalid_arg "Chain.blit_point_to: point out of range";
  if pos < 0 || pos + t.dim > Array.length dst then
    invalid_arg "Chain.blit_point_to: destination range out of bounds";
  Array.blit t.data ((t.offsets.(k) + i) * t.dim) dst pos t.dim

let to_lists t =
  List.init (n_chains t) (fun k -> List.init (chain_length t k) (get t k))

module Builder = struct
  type t = {
    bdim : int;
    mutable data : int array;
    mutable n : int;  (** points stored *)
    mutable offsets : int list;  (** closed-chain boundaries, reversed *)
    mutable longest : int;
    mutable open_len : int;  (** points in the chain being built *)
  }

  let create ~dim =
    if dim < 0 then invalid_arg "Chain.Builder.create: negative dimension";
    {
      bdim = dim;
      data = Array.make (max 1 (16 * dim)) 0;
      n = 0;
      offsets = [ 0 ];
      longest = 0;
      open_len = 0;
    }

  let add_point b (x : Ivec.t) =
    if Array.length x <> b.bdim then
      invalid_arg "Chain.Builder.add_point: dimension mismatch";
    let need = (b.n + 1) * b.bdim in
    if need > Array.length b.data then begin
      let data = Array.make (max need (2 * Array.length b.data)) 0 in
      Array.blit b.data 0 data 0 (b.n * b.bdim);
      b.data <- data
    end;
    Array.blit x 0 b.data (b.n * b.bdim) b.bdim;
    b.n <- b.n + 1;
    b.open_len <- b.open_len + 1

  let end_chain b =
    b.offsets <- b.n :: b.offsets;
    if b.open_len > b.longest then b.longest <- b.open_len;
    b.open_len <- 0

  let finish b =
    if b.open_len > 0 then end_chain b;
    {
      dim = b.bdim;
      data = Array.sub b.data 0 (b.n * b.bdim);
      offsets = Array.of_list (List.rev b.offsets);
      longest = b.longest;
    }
end

let of_lists ~dim chains =
  let b = Builder.create ~dim in
  List.iter
    (fun chain ->
      List.iter (Builder.add_point b) chain;
      Builder.end_chain b)
    chains;
  Builder.finish b

module VSet = Set.Make (struct
  type t = int array

  let compare = Ivec.compare_lex
end)

let decompose ~three ~rec_ ~phi ~params =
  let in_phi x = Iset.mem phi (Array.append x params) in
  let in_p2 x = Iset.mem three.Threeset.p2 (Array.append x params) in
  let n_p2 = Enum.cardinal (Iset.bind_params three.Threeset.p2 params) in
  let w_points = Enum.points (Iset.bind_params three.Threeset.w params) in
  let dim =
    match w_points with
    | x :: _ -> Array.length x
    | [] -> Iset.n_iters three.Threeset.p2
  in
  let b = Builder.create ~dim in
  let seen = ref VSet.empty in
  List.iter
    (fun start ->
      if not (in_p2 start) then
        Diag.fail
          (Diag.Outside_partition
             ("chain start " ^ Ivec.to_string start ^ " not in P2"));
      let rec walk x =
        if VSet.mem x !seen then
          Diag.fail (Diag.Lemma1_violation "chains intersect");
        seen := VSet.add x !seen;
        Builder.add_point b x;
        match Recurrence.successor rec_ ~in_phi x with
        | Some y when in_p2 y -> walk y
        | Some _ | None -> ()
      in
      walk start;
      Builder.end_chain b)
    w_points;
  let covered = VSet.cardinal !seen in
  if covered <> n_p2 then
    Diag.fail (Diag.Chain_cover { covered; expected = n_p2 });
  Builder.finish b
