module Q = Numeric.Rat
module Qmat = Linalg.Qmat
module Ivec = Linalg.Ivec
module Depeq = Depend.Depeq

type t = {
  m : int;
  t_wr : Qmat.t;
  u_wr : Q.t array;
  t_rw : Qmat.t;
  u_rw : Q.t array;
  det_wr : Q.t;
}

let of_pair (p : Depeq.t) ~params =
  let qa = Qmat.of_imat p.Depeq.a_mat and qb = Qmat.of_imat p.Depeq.b_mat in
  match (Qmat.inv qa, Qmat.inv qb) with
  | Some ai, Some bi ->
      let off arr =
        Array.map (fun a -> Q.of_int (Loopir.Affine.eval params a)) arr
      in
      let a_off = off p.Depeq.a_off and b_off = off p.Depeq.b_off in
      let t_wr = Qmat.mul qa bi in
      let u_wr = Qmat.vecmat (Qmat.qvec_sub a_off b_off) bi in
      let t_rw = Qmat.mul qb ai in
      let u_rw = Qmat.vecmat (Qmat.qvec_sub b_off a_off) ai in
      Some { m = p.Depeq.m; t_wr; u_wr; t_rw; u_rw; det_wr = Qmat.det t_wr }
  | _ -> None

let image t_mat u x =
  Qmat.qvec_to_ivec (Qmat.qvec_add (Qmat.ivecmat x t_mat) u)

let neighbor_as_write r x = image r.t_wr r.u_wr x
let neighbor_as_read r x = image r.t_rw r.u_rw x

let neighbors r x =
  let cands =
    List.filter_map Fun.id [ neighbor_as_write r x; neighbor_as_read r x ]
  in
  let cands = List.filter (fun y -> not (Ivec.equal y x)) cands in
  List.sort_uniq Ivec.compare_lex cands

let pick r ~in_phi ~dir x =
  let cands =
    List.filter
      (fun y -> in_phi y && dir * Ivec.compare_lex y x > 0)
      (neighbors r x)
  in
  match cands with
  | [] -> None
  | [ y ] -> Some y
  | _ ->
      Diag.fail
        (Diag.Lemma1_violation
           "two distinct successors for one intermediate iteration")

let successor r ~in_phi x = pick r ~in_phi ~dir:1 x
let predecessor r ~in_phi x = pick r ~in_phi ~dir:(-1) x

let growth r =
  let d = abs_float (Q.to_float r.det_wr) in
  if d = 0.0 then infinity else Float.max d (1.0 /. d)
