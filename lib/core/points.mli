(** Packed iteration-point buffers: a set of [n] integer vectors of a fixed
    dimension stored as one flat [int array] (point-major), instead of an
    [Ivec.t list].  Materialized partitions hold thousands of points per
    run, so the packed layout replaces one boxed array + list cell per
    point with a single allocation — the GC-pressure cut visible in the
    [alloc_words] fields of the pipeline benchmarks. *)

type t

val dim : t -> int
val length : t -> int

val get : t -> int -> Linalg.Ivec.t
(** [get t i] is a fresh copy of the [i]-th point (callers may mutate it). *)

val blit_to : t -> int -> int array -> int -> unit
(** [blit_to t i dst pos] copies the [i]-th point into [dst] at [pos]
    without allocating — the packing primitive of the bytecode engine's
    flat work buffers.  Raises [Invalid_argument] when the point index or
    the destination range is out of bounds. *)

val iter : (Linalg.Ivec.t -> unit) -> t -> unit
(** Iterates in storage order; each callback receives a fresh copy. *)

val to_list : t -> Linalg.Ivec.t list
(** Points in storage order, freshly allocated. *)

val of_list : dim:int -> Linalg.Ivec.t list -> t
(** Packs a point list; raises [Invalid_argument] on a dimension
    mismatch. *)

val empty : dim:int -> t

(** Append-only construction without intermediate lists (amortized O(1)
    per point). *)
module Builder : sig
  type points := t
  type t

  val create : dim:int -> t
  val add : t -> Linalg.Ivec.t -> unit
  val length : t -> int
  val finish : t -> points
end
