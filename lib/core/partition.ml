module Iset = Presburger.Iset
module Enum = Presburger.Enum
module Solve = Depend.Solve
module Depeq = Depend.Depeq

type rec_plan = {
  simple : Depend.Solve.simple;
  pair : Depend.Depeq.t;
  three : Threeset.t;
}

type concrete_rec = {
  p1_pts : Points.t;
  chains : Chain.t;
  p3_pts : Points.t;
  growth : float;
  theorem_bound : int option;
}

type plan =
  | Rec_chains of rec_plan
  | Dataflow_const
  | Pdm_fallback of string

(* Partition-shape metrics, recorded by both materialization engines so a
   report diff shows |P1|/|P2|/|P3|, the chain count and the chain-length
   distribution of every run. *)
let c_p1 = Obs.Counter.make "partition.p1_points"
let c_p2 = Obs.Counter.make "partition.p2_points"
let c_p3 = Obs.Counter.make "partition.p3_points"
let c_chains = Obs.Counter.make "partition.chains"
let h_chain_len = Obs.Histogram.make "partition.chain_length"

(* Event logs cite the first few chain start points as evidence; the
   full list can be huge, so cap it. *)
let max_cited_starts = 16

let record_concrete (c : concrete_rec) =
  Obs.Counter.add c_p1 (Points.length c.p1_pts);
  Obs.Counter.add c_p3 (Points.length c.p3_pts);
  let n_chains = Chain.n_chains c.chains in
  Obs.Counter.add c_chains n_chains;
  for k = 0 to n_chains - 1 do
    let len = Chain.chain_length c.chains k in
    Obs.Counter.add c_p2 len;
    Obs.Histogram.observe h_chain_len len
  done;
  Obs.Event.emit ~scope:"partition" ~name:"cardinality" (fun () ->
      let starts = ref [] in
      for k = min n_chains max_cited_starts - 1 downto 0 do
        if Chain.chain_length c.chains k > 0 then
          starts := Linalg.Ivec.to_string (Chain.get c.chains k 0) :: !starts
      done;
      [
        ("p1", Obs.Event.Int (Points.length c.p1_pts));
        ("p2", Obs.Event.Int (Chain.total_points c.chains));
        ("p3", Obs.Event.Int (Points.length c.p3_pts));
        ("chains", Obs.Event.Int n_chains);
        ("longest_chain", Obs.Event.Int c.chains.Chain.longest);
        ("growth", Obs.Event.Float c.growth);
        ( "theorem_bound",
          match c.theorem_bound with
          | Some b -> Obs.Event.Int b
          | None -> Obs.Event.Str "unbounded" );
        ( "chain_starts",
          Obs.Event.Str
            (String.concat "; " !starts
            ^ if n_chains > max_cited_starts then "; ..." else "") );
      ]);
  c

let reject_rec why =
  Obs.Event.emit ~scope:"partition" ~name:"choose.reject_rec" (fun () ->
      [ ("why", Obs.Event.Str why) ]);
  None

let choose prog =
  let single_pair () =
    match Solve.analyze_simple prog with
    | a -> (
        match a.Solve.pair with
        | Some p when Depeq.full_rank p -> (
            match Threeset.compute ~phi:a.Solve.phi ~rd:a.Solve.rd with
            | three ->
                Obs.Event.emit ~scope:"partition" ~name:"choose.rec" (fun () ->
                    [
                      ("array", Obs.Event.Str p.Depeq.arr);
                      ("det_a", Obs.Event.Int (Depeq.det_a p));
                      ("det_b", Obs.Event.Int (Depeq.det_b p));
                      ( "why",
                        Obs.Event.Str
                          (Printf.sprintf
                             "Lemma 1 preconditions hold: single coupled \
                              reference pair on %s with full-rank A (det %d) \
                              and full-rank B (det %d)"
                             p.Depeq.arr (Depeq.det_a p) (Depeq.det_b p)) );
                    ]);
                Some (Rec_chains { simple = a; pair = p; three })
            | exception Presburger.Omega.Blowup _ ->
                (* Set algebra too expensive symbolically: degrade to the
                   dataflow / PDM branches rather than fail. *)
                reject_rec
                  "three-set computation hit a set-algebra blowup; degrading")
        | Some p ->
            reject_rec
              (Printf.sprintf
                 "coupled pair coefficient matrices are not full rank (det A \
                  = %d, det B = %d)"
                 (Depeq.det_a p) (Depeq.det_b p))
        | None -> reject_rec "no single coupled reference pair")
    | exception Invalid_argument msg ->
        reject_rec ("program outside the single-statement fast path: " ^ msg)
    | exception Depend.Space.Unsupported msg ->
        reject_rec ("unsupported loop structure: " ^ msg)
    | exception Presburger.Omega.Blowup _ ->
        reject_rec "dependence analysis hit a set-algebra blowup"
  in
  match single_pair () with
  | Some plan -> plan
  | None ->
      if prog.Loopir.Ast.params = [] then begin
        Obs.Event.emit ~scope:"partition" ~name:"choose.dataflow" (fun () ->
            [
              ( "why",
                Obs.Event.Str
                  "constant loop bounds: concrete dataflow partitioning \
                   applies" );
            ]);
        Dataflow_const
      end
      else begin
        let why = "multiple coupled subscripts with symbolic loop bounds" in
        Obs.Event.emit ~scope:"partition" ~name:"choose.pdm" (fun () ->
            [ ("why", Obs.Event.Str why) ]);
        Pdm_fallback why
      end

(* Shared front half of both materialization engines: the parameter arity
   check, the name→value environment over [simple.params], and the
   concrete recurrence (Singular_recurrence when the pair's coefficient
   matrix is not invertible at these parameters). *)
let bind_recurrence rp ~params =
  let np = Array.length rp.simple.Solve.params in
  if Array.length params <> np then
    Diag.fail (Diag.Param_arity { expected = np; got = Array.length params });
  let param_env name =
    let rec find k =
      if k = np then Diag.fail (Diag.Unbound_parameter name)
      else if rp.simple.Solve.params.(k) = name then params.(k)
      else find (k + 1)
    in
    find 0
  in
  let rec_ =
    match Recurrence.of_pair rp.pair ~params:param_env with
    | Some r -> r
    | None ->
        Diag.fail (Diag.Singular_recurrence "coefficient matrix not invertible")
  in
  (param_env, rec_)

let iter_dim rp = Loopir.Prog.depth rp.simple.Solve.stmt

let materialize_rec rp ~params =
  let _, rec_ = bind_recurrence rp ~params in
  let chains =
    Chain.decompose ~three:rp.three ~rec_ ~phi:rp.simple.Solve.phi ~params
  in
  let dim = iter_dim rp in
  let p1_pts =
    Points.of_list ~dim (Enum.points (Iset.bind_params rp.three.Threeset.p1 params))
  in
  let p3_pts =
    Points.of_list ~dim (Enum.points (Iset.bind_params rp.three.Threeset.p3 params))
  in
  let growth = Recurrence.growth rec_ in
  let diameter = Theorem.diameter rp.simple.Solve.phi ~params in
  let theorem_bound = Theorem.bound ~growth ~diameter in
  record_concrete { p1_pts; chains; p3_pts; growth; theorem_bound }

let materialize_rec_scan rp ~params =
  let _, rec_ = bind_recurrence rp ~params in
  let passoc =
    Array.to_list (Array.mapi (fun k n -> (n, params.(k))) rp.simple.Solve.params)
  in
  let pts = Depend.Scan.iter_space rp.simple.Solve.stmt ~params:passoc in
  let dim = iter_dim rp in
  let p1 = Points.Builder.create ~dim
  and p3 = Points.Builder.create ~dim
  and w = Points.Builder.create ~dim in
  let n_p2 = ref 0 in
  let lo = ref None and hi = ref None in
  List.iter
    (fun x ->
      (match !lo with
      | None ->
          lo := Some (Array.copy x);
          hi := Some (Array.copy x)
      | Some l ->
          let h = Option.get !hi in
          Array.iteri
            (fun k v ->
              if v < l.(k) then l.(k) <- v;
              if v > h.(k) then h.(k) <- v)
            x);
      match Threeset.classify_point rp.three ~params x with
      | `P1 -> Points.Builder.add p1 x
      | `P3 -> Points.Builder.add p3 x
      | `P2 ->
          incr n_p2;
          if Iset.mem rp.three.Threeset.w (Array.append x params) then
            Points.Builder.add w x
      | `Outside ->
          Diag.fail
            (Diag.Outside_partition (Linalg.Ivec.to_string x)))
    pts;
  let in_phi x = Iset.mem rp.simple.Solve.phi (Array.append x params) in
  let in_p2 x =
    Iset.mem rp.three.Threeset.p2 (Array.append x params)
  in
  let cb = Chain.Builder.create ~dim in
  (* Same cycle/intersection guard as Chain.decompose: a successor map
     with a cycle inside P2 (possible for degenerate coupled pairs, e.g.
     an involution) would otherwise walk forever. *)
  let seen : (int array, unit) Hashtbl.t = Hashtbl.create 64 in
  Points.iter
    (fun start ->
      let rec walkc x =
        if Hashtbl.mem seen x then
          Diag.fail (Diag.Lemma1_violation "chains intersect");
        Hashtbl.add seen x ();
        Chain.Builder.add_point cb x;
        match Recurrence.successor rec_ ~in_phi x with
        | Some y when in_p2 y -> walkc y
        | Some _ | None -> ()
      in
      walkc start;
      Chain.Builder.end_chain cb)
    (Points.Builder.finish w);
  let chains = Chain.Builder.finish cb in
  let covered = Chain.total_points chains in
  if covered <> !n_p2 then
    Diag.fail (Diag.Chain_cover { covered; expected = !n_p2 });
  let growth = Recurrence.growth rec_ in
  let diameter =
    match (!lo, !hi) with
    | Some l, Some h ->
        let acc = ref 0.0 in
        Array.iteri
          (fun k v ->
            let d = float_of_int (h.(k) - v) in
            acc := !acc +. (d *. d))
          l;
        sqrt !acc
    | _ -> 0.0
  in
  record_concrete
    {
      p1_pts = Points.Builder.finish p1;
      chains;
      p3_pts = Points.Builder.finish p3;
      growth;
      theorem_bound = Theorem.bound ~growth ~diameter;
    }

let materialize ?(engine = `Scan) rp ~params =
  match
    match engine with
    | `Enum -> materialize_rec rp ~params
    | `Scan -> materialize_rec_scan rp ~params
  with
  | c -> Ok c
  | exception Diag.Error e -> Error e
  | exception Presburger.Omega.Blowup m -> Error (Diag.Set_blowup m)

let rec_points_in_order c =
  Points.to_list c.p1_pts
  @ List.concat (Chain.to_lists c.chains)
  @ Points.to_list c.p3_pts
