(* recpart — command-line driver for the recurrence-chain partitioner.

   Programs are given either as a builtin name (see `recpart list`) or as a
   path to a mini-Fortran source file.  Symbolic loop bounds are set with
   repeated `-p name=value` options.  Every subcommand goes through the
   pipeline layer (classify → materialize → schedule → execute); `--strategy`
   forces a scheme, `--json` emits the structured report. *)

open Cmdliner

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let load_program spec =
  match List.assoc_opt spec Loopir.Builtin.all with
  | Some p -> p
  | None ->
      if Sys.file_exists spec then begin
        let ic = open_in spec in
        let n = in_channel_length ic in
        let src = really_input_string ic n in
        close_in ic;
        match Loopir.Parser.parse ~name:(Filename.basename spec) src with
        | p -> p
        | exception Loopir.Parser.Error (msg, line) ->
            die "recpart: %s:%d: parse error: %s" spec line msg
      end
      else
        die
          "recpart: unknown program %S (not a builtin — see `recpart list` — \
           and not a file)"
          spec

let params_of_assoc prog assoc =
  List.map
    (fun p ->
      match List.assoc_opt p assoc with
      | Some v -> (p, v)
      | None -> die "recpart: parameter %s not set (use -p %s=<int>)" p p)
    prog.Loopir.Ast.params

let ok_or_die ~stage = function
  | Ok v -> v
  | Error e ->
      die "recpart: %s failed: %s" (Diag.stage_name stage) (Diag.to_string e)

(* ---- common arguments ------------------------------------------------ *)

let prog_arg =
  let doc = "Builtin program name or path to a mini-Fortran file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let param_conv =
  let parse s =
    match String.index_opt s '=' with
    | Some k -> (
        let name = String.sub s 0 k
        and v = String.sub s (k + 1) (String.length s - k - 1) in
        match int_of_string_opt v with
        | Some v -> Ok (String.lowercase_ascii name, v)
        | None -> Error (`Msg "expected NAME=INT"))
    | None -> Error (`Msg "expected NAME=INT")
  in
  let print ppf (n, v) = Format.fprintf ppf "%s=%d" n v in
  Arg.conv (parse, print)

let params_arg =
  let doc = "Bind a symbolic loop bound, e.g. -p n=100 (repeatable)." in
  Arg.(value & opt_all param_conv [] & info [ "p"; "param" ] ~docv:"NAME=INT" ~doc)

let threads_arg =
  let doc = "Number of threads/domains." in
  Arg.(value & opt int 4 & info [ "t"; "threads" ] ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace_event JSON file of the run; load it in \
     chrome://tracing or https://ui.perfetto.dev."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ---- cost-model constants on disk ------------------------------------ *)

let cost_to_json (c : Runtime.Sim.cost) =
  Pipeline.Json.Obj
    [
      ("w_iter", Pipeline.Json.Float c.Runtime.Sim.w_iter);
      ("code_factor", Pipeline.Json.Float c.Runtime.Sim.code_factor);
      ("fork", Pipeline.Json.Float c.Runtime.Sim.fork);
      ("barrier", Pipeline.Json.Float c.Runtime.Sim.barrier);
      ("bound_eval", Pipeline.Json.Float c.Runtime.Sim.bound_eval);
    ]

let cost_of_json j =
  let num k =
    match Pipeline.Json.member k j with
    | Some (Pipeline.Json.Float f) -> Some f
    | Some (Pipeline.Json.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  match
    (num "w_iter", num "code_factor", num "fork", num "barrier",
     num "bound_eval")
  with
  | Some w_iter, Some code_factor, Some fork, Some barrier, Some bound_eval ->
      Ok { Runtime.Sim.w_iter; code_factor; fork; barrier; bound_eval }
  | _ ->
      Error
        "cost file must bind w_iter, code_factor, fork, barrier and \
         bound_eval to numbers"

let load_cost = function
  | None -> None
  | Some path -> (
      let src =
        try read_file path
        with Sys_error m -> die "recpart: cannot read cost file: %s" m
      in
      match Pipeline.Json.parse src with
      | Error m -> die "recpart: %s: invalid JSON: %s" path m
      | Ok j -> (
          match cost_of_json j with
          | Ok c -> Some c
          | Error m -> die "recpart: %s: %s" path m))

let cost_file_arg =
  let doc =
    "Read cost-model constants (as written by $(b,profile --calibrate \
     --cost-out)) from a JSON FILE and predict with them instead of the \
     built-in defaults."
  in
  Arg.(value & opt (some string) None & info [ "cost" ] ~docv:"FILE" ~doc)

let write_trace ?metrics sink = function
  | None -> ()
  | Some path ->
      write_file path (Obs.Trace.to_chrome_json ?metrics sink);
      Printf.eprintf "trace written to %s (open in ui.perfetto.dev)\n" path

(* The JSON shape for a failed run: the stage that died, the structured
   error, and the wall time of every stage that completed first. *)
let error_json (e : Pipeline.Driver.error) =
  Pipeline.Json.Obj
    [
      ("ok", Pipeline.Json.Bool false);
      ("failed_stage", Pipeline.Json.Str (Diag.stage_name e.Pipeline.Driver.stage));
      ("error", Pipeline.Json.Str (Diag.to_string e.Pipeline.Driver.error));
      ( "stages",
        Pipeline.Json.List
          (List.map
             (fun (label, s) ->
               Pipeline.Json.Obj
                 [
                   ("stage", Pipeline.Json.Str label);
                   ("seconds", Pipeline.Json.Float s);
                 ])
             e.Pipeline.Driver.timings) );
    ]

let strategy_arg =
  let doc =
    "Force a partitioning strategy instead of Algorithm 1 selection. One of "
    ^ String.concat ", "
        (List.map Pipeline.Plan.strategy_name Pipeline.Plan.all_strategies)
    ^ "."
  in
  let sconv =
    Arg.enum
      (List.map
         (fun s -> (Pipeline.Plan.strategy_name s, s))
         Pipeline.Plan.all_strategies)
  in
  Arg.(value & opt (some sconv) None & info [ "s"; "strategy" ] ~docv:"NAME" ~doc)

let engine_arg =
  let doc =
    "Schedule execution engine: $(b,compiled) (statements lowered once to \
     closures over the iteration vector), $(b,bytecode) (statements lowered \
     to a flat int-coded instruction stream executed by a tight VM loop \
     over packed work buffers) or $(b,interp) (the reference AST \
     interpreter)."
  in
  Arg.(
    value
    & opt
        (enum
           [ ("compiled", `Compiled); ("bytecode", `Bytecode); ("interp", `Interp) ])
        `Compiled
    & info [ "engine" ] ~docv:"NAME" ~doc)

let chunking_arg =
  let doc =
    "Within-phase work distribution: $(b,cost) (DOALL blocks sized from the \
     cost model, chains self-scheduled longest-first through a shared \
     cursor) or $(b,static) (equal DOALL blocks and longest-first LPT \
     buckets, fixed before the phase starts)."
  in
  Arg.(
    value
    & opt (enum [ ("cost", `Cost); ("static", `Static) ]) `Cost
    & info [ "chunking" ] ~docv:"MODE" ~doc)

let classify ?strategy prog =
  ok_or_die ~stage:Diag.Classify (Pipeline.Driver.classify ?strategy prog)

let materialize plan ~prog ~params =
  ok_or_die ~stage:Diag.Materialize
    (Pipeline.Driver.materialize plan ~prog ~params)

let schedule_of conc =
  ok_or_die ~stage:Diag.Schedule (Pipeline.Driver.schedule conc)

(* ---- list ------------------------------------------------------------ *)

let list_cmd =
  let run () =
    print_endline "paper examples:";
    List.iter
      (fun (n, _) -> Printf.printf "  %s\n" n)
      (List.filteri (fun i _ -> i < 6) Loopir.Builtin.all);
    print_endline "corpus kernels:";
    List.iter (fun (n, _) -> Printf.printf "  %s\n" n) Loopir.Builtin.corpus
  in
  Cmd.v (Cmd.info "list" ~doc:"List builtin programs")
    Term.(const run $ const ())

(* ---- show ------------------------------------------------------------ *)

let show_cmd =
  let run spec =
    let p = load_program spec in
    print_string (Loopir.Pretty.program_to_string p);
    Printf.printf "! parameters: %s\n" (String.concat ", " p.Loopir.Ast.params)
  in
  Cmd.v (Cmd.info "show" ~doc:"Print a program")
    Term.(const run $ prog_arg)

(* ---- analyze --------------------------------------------------------- *)

let analyze_cmd =
  let run spec passoc =
    let prog = load_program spec in
    match Pipeline.Driver.analyze prog with
    | Ok a ->
        Printf.printf "perfect nest, depth %d, iteration space:\n  %s\n"
          (Array.length a.Depend.Solve.iters)
          (Format.asprintf "%a" Presburger.Iset.pp a.Depend.Solve.phi);
        Printf.printf "forward dependence relation Rd:\n  %s\n"
          (Format.asprintf "%a" Presburger.Rel.pp a.Depend.Solve.rd);
        (match a.Depend.Solve.pair with
        | Some pr ->
            Printf.printf
              "single coupled pair on array %s: det A = %d, det B = %d%s\n"
              pr.Depend.Depeq.arr (Depend.Depeq.det_a pr)
              (Depend.Depeq.det_b pr)
              (if Depend.Depeq.full_rank pr then " (full rank: Lemma 1 applies)"
               else "")
        | None -> print_endline "no single coupled pair");
        if passoc <> [] then begin
          let params =
            Array.of_list (List.map snd (params_of_assoc prog passoc))
          in
          let ds = Depend.Distance.distances a.Depend.Solve.rd ~params in
          Printf.printf "distance set at %s: %s\n"
            (String.concat ", "
               (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) passoc))
            (String.concat " " (List.map Linalg.Ivec.to_string ds));
          Printf.printf "classification: %s\n"
            (Depend.Distance.class_to_string
               (Depend.Distance.classify a.Depend.Solve.rd
                  ~phi:a.Depend.Solve.phi ~params))
        end
    | Error (Diag.Unsupported _) ->
        let u = Depend.Solve.analyze_unified prog in
        Printf.printf
          "imperfect nest / multiple statements: unified space depth %d, %d \
           dependence disjuncts\n"
          u.Depend.Solve.unified.Depend.Space.depth
          (List.length (Presburger.Rel.polys u.Depend.Solve.urd))
    | Error e -> die "recpart: analysis failed: %s" (Diag.to_string e)
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Exact dependence analysis")
    Term.(const run $ prog_arg $ params_arg)

(* ---- partition -------------------------------------------------------- *)

let partition_cmd =
  let run spec passoc strategy =
    let prog = load_program spec in
    let plan = classify ?strategy prog in
    Printf.printf "%s: %s\n"
      (match strategy with
      | None -> "Algorithm 1 branch"
      | Some _ -> "forced strategy")
      (Pipeline.Plan.describe plan);
    (match plan with
    | Pipeline.Plan.Rec_chains rp | Pipeline.Plan.Unique_sets { rp; _ } ->
        let three = rp.Core.Partition.three in
        Printf.printf "P1:\n  %s\n"
          (Format.asprintf "%a" Presburger.Iset.pp three.Core.Threeset.p1);
        Printf.printf "P2:\n  %s\n"
          (Format.asprintf "%a" Presburger.Iset.pp three.Core.Threeset.p2);
        Printf.printf "P3:\n  %s\n"
          (Format.asprintf "%a" Presburger.Iset.pp three.Core.Threeset.p3)
    | _ -> ());
    if passoc <> [] || prog.Loopir.Ast.params = [] then begin
      let params = params_of_assoc prog passoc in
      let conc = materialize plan ~prog ~params in
      let at =
        if passoc = [] then ""
        else
          Printf.sprintf "at %s: "
            (String.concat ", "
               (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) passoc))
      in
      match conc with
      | Pipeline.Driver.Rec { c; _ } ->
          Printf.printf
            "%s|P1| = %d, chains = %d (%d pts, longest %d), |P3| = %d\n" at
            (Core.Points.length c.Core.Partition.p1_pts)
            (Core.Chain.n_chains c.Core.Partition.chains)
            (Core.Chain.total_points c.Core.Partition.chains)
            c.Core.Partition.chains.Core.Chain.longest
            (Core.Points.length c.Core.Partition.p3_pts);
          (match c.Core.Partition.theorem_bound with
          | Some b ->
              Printf.printf "Theorem 1: growth %g, chain bound %d\n"
                c.Core.Partition.growth b
          | None -> ())
      | Pipeline.Driver.Fronts d ->
          Printf.printf "%s%d steps over %d instances\n" at
            d.Core.Dataflow.steps
            (Array.length d.Core.Dataflow.instances)
      | Pipeline.Driver.Tasks { sched } ->
          Printf.printf "%s%d phases, %d instances\n" at
            (Runtime.Sched.n_phases sched)
            (Runtime.Sched.n_instances sched)
      | Pipeline.Driver.Model { tr } ->
          Printf.printf "%scost model over %d instances (no schedule)\n" at
            (Array.length tr.Depend.Trace.instances)
    end
  in
  Cmd.v (Cmd.info "partition" ~doc:"Run Algorithm 1 and show the partition")
    Term.(const run $ prog_arg $ params_arg $ strategy_arg)

(* ---- codegen ----------------------------------------------------------- *)

let codegen_cmd =
  let run spec strategy =
    let prog = load_program spec in
    let plan = classify ?strategy prog in
    match Pipeline.Driver.codegen plan ~prog with
    | Ok listing -> print_string listing
    | Error e ->
        Printf.printf "! %s: %s\n"
          (Pipeline.Plan.strategy_name (Pipeline.Plan.strategy plan))
          (Diag.to_string e)
  in
  Cmd.v (Cmd.info "codegen" ~doc:"Emit the partitioned pseudo-Fortran")
    Term.(const run $ prog_arg $ strategy_arg)

(* ---- run --------------------------------------------------------------- *)

let run_cmd =
  let json_arg =
    let doc = "Emit the run report as JSON instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run spec passoc threads strategy engine chunking json trace =
    let prog = load_program spec in
    let params = params_of_assoc prog passoc in
    let sink =
      if trace = None then Obs.Sink.null else Obs.Sink.make ()
    in
    let options =
      {
        Pipeline.Driver.default_options with
        threads;
        strategy;
        exec_engine = engine;
        chunking;
        sink;
      }
    in
    match Pipeline.Driver.run ~options ~name:spec ~params prog with
    | Error e ->
        (* The partial trace still shows where time went before the
           failure. *)
        write_trace sink trace;
        if json then begin
          print_endline (Pipeline.Json.to_string_pretty (error_json e));
          exit 1
        end
        else die "recpart: %s" (Pipeline.Driver.error_to_string e)
    | Ok { report; _ } ->
        write_trace ?metrics:report.Pipeline.Report.metrics sink trace;
        if json then
          print_endline
            (Pipeline.Json.to_string_pretty (Pipeline.Report.to_json report))
        else print_string (Pipeline.Report.to_text report);
        (match report.Pipeline.Report.legality with
        | Pipeline.Report.Failed _ -> exit 1
        | _ -> ());
        (match report.Pipeline.Report.semantics with
        | Pipeline.Report.Failed _ -> exit 1
        | _ -> ())
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run the full pipeline: partition, execute on domains, validate \
          against sequential, and report per-stage timings")
    Term.(const run $ prog_arg $ params_arg $ threads_arg $ strategy_arg
          $ engine_arg $ chunking_arg $ json_arg $ trace_arg)

(* ---- explain ----------------------------------------------------------- *)

let event_value_string = function
  | Obs.Event.Bool b -> string_of_bool b
  | Obs.Event.Int n -> string_of_int n
  | Obs.Event.Float f -> Printf.sprintf "%g" f
  | Obs.Event.Str s -> s

(* The decision log as an indented tree: one block per event, the "why"
   field promoted to the event's own line so the rendering reads as a
   chain of justifications. *)
let render_events log =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (e : Obs.Event.event) ->
      let why = List.assoc_opt "why" e.Obs.Event.fields in
      Printf.bprintf buf "  [%s] %s%s%s\n" e.Obs.Event.scope e.Obs.Event.name
        (match e.Obs.Event.severity with
        | Obs.Event.Warn -> " (warn)"
        | _ -> "")
        (match why with
        | Some v -> ": " ^ event_value_string v
        | None -> "");
      List.iter
        (fun (k, v) ->
          if k <> "why" then
            Printf.bprintf buf "      %-14s %s\n" k (event_value_string v))
        e.Obs.Event.fields)
    (Obs.Event.events log);
  Buffer.contents buf

(* --json replays the JSONL lines through the parser so the array output
   is guaranteed consistent with the --events artifact. *)
let events_json log =
  Pipeline.Json.List
    (String.split_on_char '\n' (Obs.Event.to_jsonl log)
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map (fun line ->
           match Pipeline.Json.parse line with
           | Ok j -> j
           | Error e -> die "recpart: internal: event line unparsable: %s" e))

let explain_cmd =
  let json_arg =
    let doc = "Emit the decision log as a JSON array instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let events_arg =
    let doc = "Also write the decision log as JSONL (one event per line)." in
    Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE" ~doc)
  in
  let run spec passoc strategy json events_path =
    let prog = load_program spec in
    let log = Obs.Event.make () in
    let before = Obs.Metrics.snapshot () in
    let outcome =
      Obs.Event.with_ambient log (fun () ->
          let plan = Pipeline.Driver.classify ?strategy prog in
          (* Materialization decisions (cardinalities, Theorem 1 evidence)
             only exist once parameters are bound; add them when bindings
             were given or none are needed. *)
          (match plan with
          | Ok p when passoc <> [] || prog.Loopir.Ast.params = [] ->
              let params = params_of_assoc prog passoc in
              ignore (Pipeline.Driver.materialize p ~prog ~params)
          | _ -> ());
          plan)
    in
    (* How much set algebra the decision burned, and how much of it was
       answered from the presburger memo tables. *)
    let analysis_metrics =
      Obs.Metrics.diff ~before ~after:(Obs.Metrics.snapshot ())
      |> Obs.Metrics.filter (fun name ->
             List.exists
               (fun p -> String.starts_with ~prefix:p name)
               [ "presburger."; "omega."; "iset." ])
    in
    (match events_path with
    | Some path ->
        write_file path (Obs.Event.to_jsonl log);
        Printf.eprintf "decision log written to %s (JSONL)\n" path
    | None -> ());
    if json then begin
      let plan_json =
        match outcome with
        | Ok plan ->
            [
              ("ok", Pipeline.Json.Bool true);
              ( "strategy",
                Pipeline.Json.Str
                  (Pipeline.Plan.strategy_name (Pipeline.Plan.strategy plan))
              );
              ("describe", Pipeline.Json.Str (Pipeline.Plan.describe plan));
            ]
        | Error e ->
            [
              ("ok", Pipeline.Json.Bool false);
              ("error", Pipeline.Json.Str (Diag.to_string e));
            ]
      in
      print_endline
        (Pipeline.Json.to_string_pretty
           (Pipeline.Json.Obj
              (("program", Pipeline.Json.Str spec)
               :: plan_json
              @ [
                  ("events", events_json log);
                  ("metrics", Pipeline.Report.metrics_json analysis_metrics);
                ])))
    end
    else begin
      (match outcome with
      | Ok plan ->
          Printf.printf "%s: %s branch — %s\n" spec
            (Pipeline.Plan.strategy_name (Pipeline.Plan.strategy plan))
            (Pipeline.Plan.describe plan)
      | Error e ->
          Printf.printf "%s: no strategy applies — %s\n" spec
            (Diag.to_string e));
      print_endline "decision log:";
      print_string (render_events log);
      if not (Obs.Metrics.is_empty analysis_metrics) then begin
        print_endline "analysis metrics:";
        List.iter
          (fun (name, v) -> Printf.printf "  %-32s %d\n" name v)
          analysis_metrics.Obs.Metrics.counters
      end
    end;
    if Result.is_error outcome then exit 1
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain a partitioning decision: re-run strategy selection (and \
          materialization when parameters are bound) with the decision \
          event log recording, and print which dependence tests fired, \
          why the strategy was chosen or rejected, and the partition \
          evidence")
    Term.(const run $ prog_arg $ params_arg $ strategy_arg $ json_arg
          $ events_arg)

(* ---- profile ----------------------------------------------------------- *)

let critpath_json (cp : Obs.Critpath.t) ~theorem_bound =
  let module J = Pipeline.Json in
  let opt f = function None -> J.Null | Some v -> f v in
  let task_json (t : Obs.Critpath.task) =
    J.Obj
      [
        ( "kind",
          J.Str
            (match t.Obs.Critpath.kind with
            | Obs.Critpath.Chain -> "chain"
            | Obs.Critpath.Block -> "block") );
        ("id", J.Int t.Obs.Critpath.id);
        ("len", J.Int t.Obs.Critpath.len);
        ("tid", J.Int t.Obs.Critpath.tid);
        ("start_ns", J.Int (Int64.to_int t.Obs.Critpath.start_ns));
        ("dur_ns", J.Int (Int64.to_int t.Obs.Critpath.dur_ns));
      ]
  in
  let barrier_json (b : Obs.Critpath.barrier) =
    J.Obj
      [
        ("label", J.Str b.Obs.Critpath.label);
        ("wall_ns", J.Int (Int64.to_int b.Obs.Critpath.wall_ns));
        ("tasks", J.Int b.Obs.Critpath.n_tasks);
        ("domains", J.Int b.Obs.Critpath.n_domains);
        ("busy_ns", J.Int (Int64.to_int b.Obs.Critpath.busy_ns));
        ("idle_fraction", J.Float b.Obs.Critpath.idle_fraction);
        ("crit_ns", J.Int (Int64.to_int b.Obs.Critpath.crit_ns));
        ("longest_len", J.Int b.Obs.Critpath.longest_len);
        ("straggler", opt task_json b.Obs.Critpath.straggler);
      ]
  in
  J.Obj
    [
      ("threads", J.Int cp.Obs.Critpath.threads);
      ("wall_ns", J.Int (Int64.to_int cp.Obs.Critpath.wall_ns));
      ("critical_ns", J.Int (Int64.to_int cp.Obs.Critpath.critical_ns));
      ("critical_fraction", J.Float cp.Obs.Critpath.critical_fraction);
      ( "longest_chain",
        opt (fun l -> J.Int l) cp.Obs.Critpath.longest_chain );
      ("theorem_bound", opt (fun b -> J.Int b) theorem_bound);
      ("barriers", J.List (List.map barrier_json cp.Obs.Critpath.barriers));
    ]

(* Calibration samples: the schedule's size structure zipped positionally
   with the executor's measured per-phase busy/wall profile (both walk the
   same phase list). *)
let samples_of_run ~threads sched (report : Pipeline.Report.t) =
  match sched with
  | None -> []
  | Some s ->
      let shapes = Runtime.Sim.abstract s in
      let phases = report.Pipeline.Report.phases in
      if List.length shapes <> List.length phases then []
      else
        List.map2
          (fun shape (p : Pipeline.Report.phase_profile) ->
            {
              Runtime.Sim.s_threads = threads;
              s_shape = shape;
              s_busy = p.Pipeline.Report.busy_seconds;
              s_wall = p.Pipeline.Report.seconds;
            })
          shapes phases

let profile_cmd =
  let html_arg =
    let doc =
      "Write a self-contained HTML report (stage waterfall, per-domain \
       timeline, span tree, metrics tables)."
    in
    Arg.(value & opt (some string) None & info [ "html" ] ~docv:"FILE" ~doc)
  in
  let sched_arg =
    let doc =
      "Print the scheduler profile: critical path through the barriers, \
       per-barrier straggler attribution, and the measured longest chain \
       vs the Theorem 1 bound."
    in
    Arg.(value & flag & info [ "sched" ] ~doc)
  in
  let sched_json_arg =
    let doc =
      "Write the scheduler profile (critical path, straggler table, \
       predicted-vs-actual report) as JSON to FILE."
    in
    Arg.(value & opt (some string) None
         & info [ "sched-json" ] ~docv:"FILE" ~doc)
  in
  let calibrate_arg =
    let doc =
      "Fit the cost-model constants ({!Runtime.Sim.calibrate}) from this \
       run's measured phases and print them; combine with $(b,--cost-out) \
       to persist."
    in
    Arg.(value & flag & info [ "calibrate" ] ~doc)
  in
  let cost_out_arg =
    let doc = "Write the calibrated cost constants to FILE as JSON." in
    Arg.(value & opt (some string) None
         & info [ "cost-out" ] ~docv:"FILE" ~doc)
  in
  let run spec passoc threads strategy engine chunking trace html sched_prof
      sched_json calibrate cost_out cost_file =
    let prog = load_program spec in
    let params = params_of_assoc prog passoc in
    let sink = Obs.Sink.make () in
    let options =
      {
        Pipeline.Driver.default_options with
        threads;
        strategy;
        exec_engine = engine;
        chunking;
        sim_cost = load_cost cost_file;
        sink;
      }
    in
    let write_html ?metrics () =
      match html with
      | None -> ()
      | Some path ->
          write_file path
            (Obs.Html.render ?metrics ~title:("recpart profile: " ^ spec) sink);
          Printf.eprintf "HTML report written to %s\n" path
    in
    match Pipeline.Driver.run ~options ~name:spec ~params prog with
    | Error e ->
        write_trace sink trace;
        write_html ();
        die "recpart: %s" (Pipeline.Driver.error_to_string e)
    | Ok { report; sched; _ } ->
        print_string (Obs.Trace.to_text sink);
        print_newline ();
        print_string (Pipeline.Report.to_text report);
        let theorem_bound =
          Option.bind report.Pipeline.Report.stats (fun st ->
              st.Pipeline.Report.theorem_bound)
        in
        if sched_prof || sched_json <> None then begin
          let cp =
            Obs.Critpath.of_spans ~threads ?theorem_bound
              (Obs.Sink.spans sink)
          in
          if sched_prof then begin
            print_newline ();
            print_string (Obs.Critpath.to_text ?theorem_bound cp)
          end;
          match sched_json with
          | None -> ()
          | Some path ->
              write_file path
                (Pipeline.Json.to_string_pretty
                   (Pipeline.Json.Obj
                      [
                        ("program", Pipeline.Json.Str spec);
                        ("critpath", critpath_json cp ~theorem_bound);
                        ("report", Pipeline.Report.to_json report);
                      ]));
              Printf.eprintf "scheduler profile written to %s\n" path
        end;
        if calibrate then begin
          match
            Runtime.Sim.calibrate (samples_of_run ~threads sched report)
          with
          | None ->
              prerr_endline
                "calibration failed: the run measured no executed work \
                 (nothing to fit)"
          | Some c ->
              Printf.printf
                "calibrated cost (seconds): w_iter=%.3e fork=%.3e \
                 barrier=%.3e bound_eval=%.3e code_factor=%.2f\n"
                c.Runtime.Sim.w_iter c.Runtime.Sim.fork
                c.Runtime.Sim.barrier c.Runtime.Sim.bound_eval
                c.Runtime.Sim.code_factor;
              (match cost_out with
              | None -> ()
              | Some path ->
                  write_file path
                    (Pipeline.Json.to_string_pretty (cost_to_json c));
                  Printf.eprintf "cost constants written to %s\n" path)
        end;
        write_trace ?metrics:report.Pipeline.Report.metrics sink trace;
        write_html ?metrics:report.Pipeline.Report.metrics ()
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run the pipeline with span recording on: print the per-domain \
          span tree and the report (with load-imbalance, prediction and \
          metrics sections); $(b,--sched) adds the critical-path/straggler \
          profile, $(b,--calibrate) fits the cost model from the measured \
          run, and $(b,--trace)/$(b,--html) write Chrome-trace/HTML \
          artifacts")
    Term.(const run $ prog_arg $ params_arg $ threads_arg $ strategy_arg
          $ engine_arg $ chunking_arg $ trace_arg $ html_arg $ sched_arg
          $ sched_json_arg $ calibrate_arg $ cost_out_arg $ cost_file_arg)

(* ---- batch / serve ----------------------------------------------------- *)

let domains_arg =
  let doc = "Worker domains draining the request queue." in
  Arg.(value & opt int 4 & info [ "domains" ] ~doc)

let cache_arg =
  let doc = "Result-cache capacity (content-addressed plan/report entries)." in
  Arg.(value & opt int 512 & info [ "cache" ] ~docv:"N" ~doc)

let deadline_arg =
  let doc =
    "Default per-request deadline in seconds (a request may override it \
     with its own deadline_s field)."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let no_check_arg =
  let doc = "Skip legality/semantics validation (faster batch throughput)." in
  Arg.(value & flag & info [ "no-check" ] ~doc)

let slow_ms_arg =
  let doc =
    "Log requests slower than this many milliseconds to stderr, with their \
     stage timings and presburger-memo delta."
  in
  Arg.(value & opt (some float) None & info [ "slow-ms" ] ~docv:"MS" ~doc)

let flight_dir_arg =
  let doc =
    "Directory for flight-recorder postmortems: a request failing with a \
     deadline/pipeline/panic error dumps its recent spans and events there \
     as JSONL."
  in
  Arg.(value & opt (some string) None & info [ "flight-dir" ] ~docv:"DIR" ~doc)

let svc_config ?store_dir ~domains ~cache ~threads ~deadline ~no_check
    ~engine ~sink ~events ~slow_ms ~flight_dir () =
  {
    Svc.Service.default_config with
    domains;
    cache_capacity = cache;
    threads;
    check = not no_check;
    measure = not no_check;
    deadline_s = deadline;
    exec_engine = engine;
    sink;
    events;
    slow_ms;
    flight_dir;
    store_dir;
  }

(* One response record per input line, errors as records: an unparsable
   line gets a synthetic id from its (1-based) line number so responses
   stay attributable. *)
let response_of_line svc ~lineno line =
  match Svc.Proto.request_of_line line with
  | Error { Svc.Proto.line_id; message } ->
      let id =
        match line_id with
        | Some id -> id
        | None -> Printf.sprintf "line-%d" lineno
      in
      Svc.Proto.error_response ~id (Svc.Proto.Bad_request message)
  | Ok req -> Svc.Service.run_one svc req

let batch_summary responses stats exec_pool =
  let n = List.length responses in
  let errors = List.length (List.filter (fun r -> not (Svc.Proto.ok r)) responses) in
  let hits =
    List.length (List.filter (fun r -> r.Svc.Proto.cached) responses)
  in
  Printf.eprintf
    "batch: %d requests, %d ok, %d errors, %d cache hits (%.0f%% hit rate), \
     cache size %d/%d\n"
    n (n - errors) errors hits
    (if n = 0 then 0.0 else 100.0 *. float_of_int hits /. float_of_int n)
    stats.Svc.Cache.size stats.Svc.Cache.capacity;
  (* The executor pool is created once per service: its spawn count scales
     with the pool size, never with the request count (CI smoke greps this
     line). *)
  Printf.eprintf "exec-pool: domains=%d spawned=%d requests=%d\n"
    (Runtime.Workers.domains exec_pool)
    (Runtime.Workers.spawned exec_pool)
    n;
  (* Request-level cache hits above; this line is the set-algebra layer
     below it (CI asserts the hit count is non-zero on the batch corpus). *)
  let t = Presburger.Hc.totals () in
  Printf.eprintf
    "presburger-memo: hits=%d misses=%d evictions=%d (%.0f%% hit rate)\n"
    t.Presburger.Hc.hits t.Presburger.Hc.misses t.Presburger.Hc.evictions
    (let calls = t.Presburger.Hc.hits + t.Presburger.Hc.misses in
     if calls = 0 then 0.0
     else 100.0 *. float_of_int t.Presburger.Hc.hits /. float_of_int calls);
  (* Per-request processing latency over the whole batch, from the
     svc.request.latency_us histogram the service observes. *)
  (match List.assoc_opt "svc.request.latency_us" (Obs.Histogram.snapshot ()) with
  | Some s when s.Obs.Histogram.count > 0 ->
      Printf.eprintf
        "latency: p50=%.0fus p90=%.0fus p99=%.0fus over %d requests (%.0f%% \
         cache hit rate)\n"
        (Obs.Histogram.percentile s 0.5)
        (Obs.Histogram.percentile s 0.9)
        (Obs.Histogram.percentile s 0.99)
        s.Obs.Histogram.count
        (if n = 0 then 0.0 else 100.0 *. float_of_int hits /. float_of_int n)
  | _ -> ())

let batch_cmd =
  let file_arg =
    let doc = "JSONL request file (one request object per line)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.jsonl" ~doc)
  in
  let out_arg =
    let doc = "Write JSONL responses here instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run file out domains cache threads deadline no_check engine trace
      slow_ms flight_dir =
    let sink = if trace = None then Obs.Sink.null else Obs.Sink.make () in
    let config =
      svc_config ~domains ~cache ~threads ~deadline ~no_check ~engine ~sink
        ~events:Obs.Event.null ~slow_ms ~flight_dir ()
    in
    let svc = Svc.Service.create ~config () in
    let ic = open_in file in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> close_in ic);
    let lines =
      List.rev !lines
      |> List.mapi (fun i l -> (i + 1, l))
      |> List.filter (fun (_, l) -> String.trim l <> "")
    in
    (* Parse up front so malformed lines become error records without
       occupying the pool; well-formed requests go through the batch
       (pool + cache) path. *)
    let items =
      List.map
        (fun (lineno, line) ->
          match Svc.Proto.request_of_line line with
          | Ok req -> `Req (lineno, req)
          | Error { Svc.Proto.line_id; message } ->
              let id =
                match line_id with
                | Some id -> id
                | None -> Printf.sprintf "line-%d" lineno
              in
              `Bad (Svc.Proto.error_response ~id (Svc.Proto.Bad_request message)))
        lines
    in
    let reqs = List.filter_map (function `Req (_, r) -> Some r | `Bad _ -> None) items in
    let responses = Svc.Service.batch svc reqs in
    Svc.Service.shutdown svc;
    (* Re-interleave in input order. *)
    let rec merge items resps acc =
      match (items, resps) with
      | [], [] -> List.rev acc
      | `Bad r :: rest, resps -> merge rest resps (r :: acc)
      | `Req _ :: rest, r :: resps -> merge rest resps (r :: acc)
      | `Req _ :: _, [] | [], _ :: _ -> assert false
    in
    let ordered = merge items responses [] in
    let oc = match out with None -> stdout | Some p -> open_out p in
    List.iter
      (fun r -> output_string oc (Svc.Proto.response_to_line r ^ "\n"))
      ordered;
    if out <> None then close_out oc;
    write_trace sink trace;
    batch_summary ordered (Svc.Service.cache_stats svc)
      (Svc.Service.exec_pool svc)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Analyze a JSONL request corpus on a domain pool with a \
          content-addressed result cache: one response record per request \
          (malformed requests become error records, the batch always \
          completes), summary statistics on stderr")
    Term.(const run $ file_arg $ out_arg $ domains_arg $ cache_arg
          $ threads_arg $ deadline_arg $ no_check_arg $ engine_arg
          $ trace_arg $ slow_ms_arg $ flight_dir_arg)

let serve_cmd =
  let listen_arg =
    let doc =
      "Serve over a socket instead of stdin/stdout: $(b,unix:PATH), \
       $(b,tcp:HOST:PORT) or $(b,HOST:PORT) (TCP port 0 binds an \
       ephemeral port, reported on stderr).  One accept loop feeds the \
       shared worker pool; each connection speaks pipelined JSONL."
    in
    Arg.(value & opt (some string) None & info [ "listen" ] ~docv:"ADDR" ~doc)
  in
  let store_dir_arg =
    let doc =
      "Durable result store directory: cached analyses are appended to \
       checksummed per-shard logs under this directory and reloaded on \
       the next start, so warm state survives restarts."
    in
    Arg.(value & opt (some string) None & info [ "store-dir" ] ~docv:"DIR" ~doc)
  in
  let max_conns_arg =
    let doc = "Maximum concurrent connections (excess are rejected with an \
               overloaded record)." in
    Arg.(value & opt int 64 & info [ "max-conns" ] ~docv:"N" ~doc)
  in
  let drain_timeout_arg =
    let doc =
      "Grace period in seconds for in-flight requests when draining \
       (SIGTERM/SIGINT)."
    in
    Arg.(value & opt float 10.0 & info [ "drain-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let queue_arg =
    let doc =
      "Bounded pool queue capacity; when full, socket requests are shed \
       with a typed overloaded record instead of queueing unboundedly."
    in
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let run listen store_dir max_conns drain_timeout queue domains cache
      threads deadline no_check engine slow_ms flight_dir =
    let config =
      {
        (svc_config ?store_dir ~domains ~cache ~threads ~deadline ~no_check
           ~engine ~sink:Obs.Sink.null ~events:Obs.Event.null ~slow_ms
           ~flight_dir ())
        with
        queue_capacity = queue;
      }
    in
    let svc = Svc.Service.create ~config () in
    (match listen with
    | None ->
        (* legacy stdin/stdout mode *)
        let lineno = ref 0 in
        (try
           while true do
             let line = input_line stdin in
             incr lineno;
             if String.trim line <> "" then begin
               let r = response_of_line svc ~lineno:!lineno line in
               print_endline (Svc.Proto.response_to_line r);
               flush stdout
             end
           done
         with End_of_file -> ())
    | Some addr_str -> (
        match Net.Addr.parse addr_str with
        | Error e ->
            Printf.eprintf "recpart serve: --listen %s: %s\n" addr_str e;
            exit 2
        | Ok addr ->
            let server_config =
              {
                Net.Server.default_config with
                max_conns;
                drain_timeout_s = drain_timeout;
              }
            in
            let server = Net.Server.start ~config:server_config svc addr in
            Printf.eprintf
              "recpart serve: listening on %s (domains=%d queue=%d \
               store=%s)\n\
               %!"
              (Net.Addr.to_string (Net.Server.addr server))
              domains queue
              (Option.value store_dir ~default:"none");
            let stopped = ref false in
            let on_signal _ =
              stopped := true;
              Net.Server.drain server
            in
            Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
            Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
            (* Thread.delay (not a bare join) so pending signals are
               delivered promptly to this main thread. *)
            while not !stopped do
              Thread.delay 0.1
            done;
            Net.Server.wait server;
            Printf.eprintf "recpart serve: drained, shutting down\n%!"));
    Svc.Service.shutdown svc
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve analyses as a concurrent socket server ($(b,--listen), \
          pipelined JSONL per connection, graceful drain on \
          SIGTERM/SIGINT, optional durable result store via \
          $(b,--store-dir)) or over stdin/stdout (default): one JSONL \
          request per line, one response record per line, sharing the \
          content-addressed cache across requests")
    Term.(const run $ listen_arg $ store_dir_arg $ max_conns_arg
          $ drain_timeout_arg $ queue_arg $ domains_arg $ cache_arg
          $ threads_arg $ deadline_arg $ no_check_arg $ engine_arg
          $ slow_ms_arg $ flight_dir_arg)

(* ---- metrics ----------------------------------------------------------- *)

let metrics_cmd =
  let corpus_arg =
    let doc =
      "Optional JSONL request corpus to run through the service first, so \
       the snapshot reflects real traffic instead of an idle process."
    in
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.jsonl" ~doc)
  in
  let json_arg =
    let doc = "Print the JSON snapshot instead of Prometheus text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let health_arg =
    let doc =
      "Print the health report (pool/queue/cache/exec liveness) instead of \
       metrics; exits non-zero when unhealthy."
    in
    Arg.(value & flag & info [ "health" ] ~doc)
  in
  let connect_arg =
    let doc =
      "Query a live server (started with $(b,recpart serve --listen)) at \
       this address over its socket protocol instead of sampling a fresh \
       in-process service — the exit-code health probe for liveness \
       checks ($(b,--health))."
    in
    Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"ADDR" ~doc)
  in
  (* Remote flavor of the metrics/health op: same protocol records, but
     over the wire against a running server. *)
  let run_connect addr_str json health =
    let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt in
    match Net.Addr.parse addr_str with
    | Error e -> fail "recpart metrics: --connect %s: %s" addr_str e
    | Ok addr -> (
        match Net.Client.connect addr with
        | Error e -> fail "recpart metrics: %s" e
        | Ok client -> (
            let mode = if health then Svc.Proto.Health else Svc.Proto.Metrics in
            let req =
              Svc.Proto.request ~mode ~id:"metrics-cli"
                ~name:(Svc.Proto.mode_name mode) (Svc.Proto.Src "")
            in
            let resp = Net.Client.request client req in
            Net.Client.close client;
            match resp with
            | Error e -> fail "recpart metrics: %s" e
            | Ok j -> (
                let member k = Pipeline.Json.member k j in
                match (health, member "healthy") with
                | true, Some (Pipeline.Json.Bool ok) ->
                    let merged =
                      match member "health" with
                      | Some (Pipeline.Json.Obj fields) ->
                          Pipeline.Json.Obj
                            (("healthy", Pipeline.Json.Bool ok) :: fields)
                      | _ -> j
                    in
                    print_endline (Pipeline.Json.to_string_pretty merged);
                    if not ok then exit 1
                | true, _ -> fail "recpart metrics: malformed health response"
                | false, _ -> (
                    match (json, member "metrics", member "prometheus") with
                    | true, Some snapshot, _ ->
                        print_endline
                          (Pipeline.Json.to_string_pretty snapshot)
                    | false, _, Some (Pipeline.Json.Str prom) ->
                        print_string prom
                    | _ ->
                        fail "recpart metrics: malformed metrics response"))))
  in
  let run corpus json health connect domains cache threads deadline no_check
      engine =
    match connect with
    | Some addr_str -> run_connect addr_str json health
    | None ->
    let config =
      svc_config ~domains ~cache ~threads ~deadline ~no_check ~engine
        ~sink:Obs.Sink.null ~events:Obs.Event.null ~slow_ms:None
        ~flight_dir:None ()
    in
    let svc = Svc.Service.create ~config () in
    (match corpus with
    | None -> ()
    | Some file ->
        let ic = open_in file in
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> close_in ic);
        let reqs =
          List.rev !lines
          |> List.filter_map (fun l ->
                 if String.trim l = "" then None
                 else Result.to_option (Svc.Proto.request_of_line l))
        in
        let resps = Svc.Service.batch svc reqs in
        Printf.eprintf "corpus: %d requests, %d ok\n"
          (List.length resps)
          (List.length (List.filter Svc.Proto.ok resps)));
    let mode = if health then Svc.Proto.Health else Svc.Proto.Metrics in
    let req =
      Svc.Proto.request ~mode ~id:"metrics-cli"
        ~name:(Svc.Proto.mode_name mode) (Svc.Proto.Src "")
    in
    let resp = Svc.Service.run_one svc req in
    Svc.Service.shutdown svc;
    match resp.Svc.Proto.body with
    | Svc.Proto.Stats { prometheus; snapshot } ->
        if json then print_endline (Pipeline.Json.to_string_pretty snapshot)
        else print_string prometheus
    | Svc.Proto.Healthy { ok; detail } ->
        let j =
          match detail with
          | Pipeline.Json.Obj fields ->
              Pipeline.Json.Obj (("healthy", Pipeline.Json.Bool ok) :: fields)
          | j -> j
        in
        print_endline (Pipeline.Json.to_string_pretty j);
        if not ok then exit 1
    | _ ->
        prerr_endline "unexpected response to introspection request";
        exit 2
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Print the live-telemetry snapshot the service's $(b,metrics) \
          protocol op exposes — Prometheus text (default), the JSON \
          snapshot ($(b,--json)), or the health report ($(b,--health)); \
          optionally after replaying a request corpus, or against a live \
          server over its socket ($(b,--connect))")
    Term.(const run $ corpus_arg $ json_arg $ health_arg $ connect_arg
          $ domains_arg $ cache_arg $ threads_arg $ deadline_arg
          $ no_check_arg $ engine_arg)

(* ---- simulate ---------------------------------------------------------- *)

let simulate_cmd =
  let json_arg =
    let doc =
      "Emit the full cost breakdown as JSON: per-phase predicted times, \
       totals, sequential baseline and speedup at every thread count."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run spec passoc max_threads strategy json cost_file =
    let module J = Pipeline.Json in
    let prog = load_program spec in
    let params = params_of_assoc prog passoc in
    let plan = classify ?strategy prog in
    let conc = materialize plan ~prog ~params in
    match conc with
    | Pipeline.Driver.Model { tr } ->
        let makespans =
          List.init max_threads (fun i ->
              let p = i + 1 in
              ( p,
                (Baselines.Doacross.pipeline tr ~threads:p ~w_iter:1.0
                   ~delay_factor:0.5)
                  .Baselines.Doacross.makespan ))
        in
        if json then
          print_endline
            (J.to_string_pretty
               (J.Obj
                  [
                    ("program", J.Str spec);
                    ("model", J.Str "doacross-pipeline");
                    ( "threads",
                      J.List
                        (List.map
                           (fun (p, m) ->
                             J.Obj
                               [
                                 ("threads", J.Int p);
                                 ("makespan", J.Float m);
                               ])
                           makespans) );
                  ]))
        else begin
          Printf.printf "threads  makespan (DOACROSS pipeline model)\n";
          List.iter
            (fun (p, m) -> Printf.printf "   %2d    %.1f\n" p m)
            makespans
        end
    | _ ->
        let sched = schedule_of conc in
        let n = Runtime.Sched.n_instances sched in
        let cost, cost_source =
          match load_cost cost_file with
          | Some c -> (c, "calibrated")
          | None -> (Runtime.Sim.with_factor 0.8, "default")
        in
        if json then begin
          let at_threads p =
            let phases = Runtime.Sim.predict cost ~threads:p sched in
            let total = List.fold_left (fun a (_, t) -> a +. t) 0.0 phases in
            J.Obj
              [
                ("threads", J.Int p);
                ( "phases",
                  J.List
                    (List.map
                       (fun (label, t) ->
                         J.Obj
                           [ ("label", J.Str label); ("seconds", J.Float t) ])
                       phases) );
                ("total_seconds", J.Float total);
                ( "speedup",
                  J.Float (Runtime.Sim.speedup cost ~threads:p ~n_seq:n sched)
                );
              ]
          in
          print_endline
            (J.to_string_pretty
               (J.Obj
                  [
                    ("program", J.Str spec);
                    ("model", J.Str "smp");
                    ("cost_source", J.Str cost_source);
                    ("cost", cost_to_json cost);
                    ("n_instances", J.Int n);
                    ("seq_seconds", J.Float (Runtime.Sim.seq_time cost n));
                    ( "threads",
                      J.List
                        (List.init max_threads (fun i -> at_threads (i + 1)))
                    );
                  ]))
        end
        else begin
          Printf.printf "threads  speedup (simulated SMP, %s cost, code \
                         factor %.2f)\n"
            cost_source cost.Runtime.Sim.code_factor;
          for p = 1 to max_threads do
            Printf.printf "   %2d    %.2f\n" p
              (Runtime.Sim.speedup cost ~threads:p ~n_seq:n sched)
          done
        end
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Predicted speedup on the SMP cost model")
    Term.(const run $ prog_arg $ params_arg $ threads_arg $ strategy_arg
          $ json_arg $ cost_file_arg)

(* ---- viz ---------------------------------------------------------------- *)

let viz_cmd =
  let fmt_arg =
    let doc = "Output format: dot (dependence graph), chains (DOT of \
               recurrence chains), ascii (2-D partition grid)." in
    Arg.(value & opt (enum [ ("dot", `Dot); ("chains", `Chains); ("ascii", `Ascii) ]) `Dot
         & info [ "f"; "format" ] ~doc)
  in
  let run spec passoc fmt =
    let prog = load_program spec in
    match fmt with
    | `Dot ->
        let params = params_of_assoc prog passoc in
        let tr = Depend.Trace.build prog ~params in
        print_string (Codegen.Viz.dot_of_trace tr)
    | `Chains -> (
        match classify prog with
        | Pipeline.Plan.Rec_chains _ as plan -> (
            let params = params_of_assoc prog passoc in
            match materialize plan ~prog ~params with
            | Pipeline.Driver.Rec { c; _ } ->
                print_string
                  (Codegen.Viz.dot_of_chains c.Core.Partition.chains)
            | _ -> assert false)
        | _ -> prerr_endline "chains are only available for REC plans")
    | `Ascii -> (
        match classify prog with
        | Pipeline.Plan.Rec_chains rp
          when Array.length rp.Core.Partition.simple.Depend.Solve.iters = 2 ->
            let passoc = params_of_assoc prog passoc in
            let params = Array.of_list (List.map snd passoc) in
            (* Use the bounding box of the scanned space. *)
            let pts =
              Depend.Scan.iter_space rp.Core.Partition.simple.Depend.Solve.stmt
                ~params:passoc
            in
            let xs = List.map (fun p -> p.(0)) pts
            and ys = List.map (fun p -> p.(1)) pts in
            let mn l = List.fold_left min max_int l
            and mx l = List.fold_left max min_int l in
            print_string
              (Codegen.Viz.ascii_three_sets rp.Core.Partition.three ~params
                 ~x_range:(mn xs, mx xs) ~y_range:(mn ys, mx ys))
        | _ -> prerr_endline "ascii view needs a 2-D REC plan")
  in
  Cmd.v
    (Cmd.info "viz" ~doc:"Visualize dependences, chains, or the partition")
    Term.(const run $ prog_arg $ params_arg $ fmt_arg)

let main =
  let doc = "recurrence-chain partitioning of non-uniform dependence loops" in
  Cmd.group
    (Cmd.info "recpart" ~version:"1.0" ~doc)
    [
      list_cmd; show_cmd; analyze_cmd; partition_cmd; codegen_cmd; run_cmd;
      explain_cmd; profile_cmd; simulate_cmd; viz_cmd; batch_cmd; serve_cmd;
      metrics_cmd;
    ]

let () = exit (Cmd.eval main)
